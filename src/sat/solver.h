// Self-contained CDCL SAT solver (MiniSat-style): two-watched literals,
// VSIDS decision heuristic with phase saving, first-UIP clause learning and
// geometric restarts. Sized for the CNFs our bounded model checker emits
// (10^4..10^6 clauses).
//
// Concurrency contract (relied on by engine::Scheduler): this translation
// unit has no global or static mutable state and no hidden randomness —
// every heuristic (VSIDS bumping, phase saving, restart schedule) lives in
// Solver members. Distinct Solver instances may therefore be driven from
// distinct threads concurrently without synchronisation, and solving the
// same clause set always performs the identical search (same model, same
// statistics). A single instance is NOT thread-safe; do not share one
// across threads.
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

namespace tmg::sat {

using Var = std::int32_t;  // 0-based variable index

/// A literal: variable with polarity, encoded as 2*var + (negated ? 1 : 0).
struct Lit {
  std::int32_t code = -2;

  Lit() = default;
  Lit(Var v, bool negated) : code(2 * v + (negated ? 1 : 0)) {}

  [[nodiscard]] Var var() const { return code >> 1; }
  [[nodiscard]] bool sign() const { return code & 1; }  // true == negated
  [[nodiscard]] Lit operator~() const {
    Lit l;
    l.code = code ^ 1;
    return l;
  }
  friend bool operator==(const Lit&, const Lit&) = default;
};

inline Lit pos(Var v) { return Lit(v, false); }
inline Lit neg(Var v) { return Lit(v, true); }

enum class Result : std::uint8_t { Sat, Unsat, Unknown };

/// Solver statistics (also feeds the Table 2 "memory" column).
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;
  std::uint64_t restarts = 0;
  /// Bytes held by the clause database and watch lists (estimate).
  std::uint64_t memory_bytes = 0;
};

class Solver {
 public:
  Var new_var();
  [[nodiscard]] std::size_t num_vars() const { return assigns_.size(); }
  [[nodiscard]] std::size_t num_clauses() const { return clauses_.size(); }

  /// Adds a clause (empty clause makes the instance trivially unsat;
  /// duplicate/complementary literals are handled). Returns false if the
  /// instance became unsatisfiable at level 0.
  bool add_clause(std::vector<Lit> lits);
  bool add_clause(Lit a) { return add_clause(std::vector<Lit>{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(std::vector<Lit>{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) {
    return add_clause(std::vector<Lit>{a, b, c});
  }

  /// Solves under optional assumptions. `conflict_budget` < 0 = unlimited.
  Result solve(const std::vector<Lit>& assumptions = {},
               std::int64_t conflict_budget = -1);

  /// Model access after Result::Sat.
  [[nodiscard]] bool value(Var v) const { return assigns_[v] == 1; }

  [[nodiscard]] const SolverStats& stats() const { return stats_; }

 private:
  struct Clause {
    std::vector<Lit> lits;
    bool learned = false;
    double activity = 0.0;
  };
  using ClauseRef = std::int32_t;
  static constexpr ClauseRef kNoReason = -1;

  // assignment trail
  std::vector<std::int8_t> assigns_;  // -1 unset, 0 false, 1 true
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_lim_;
  std::size_t qhead_ = 0;
  std::vector<ClauseRef> reason_;
  std::vector<std::int32_t> level_;

  // clause database + watches (watches_[lit.code] = clauses watching lit)
  std::vector<Clause> clauses_;
  std::vector<std::vector<ClauseRef>> watches_;

  // VSIDS
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<std::int8_t> saved_phase_;
  std::vector<Var> order_;       // lazily sorted decision candidates
  std::vector<std::uint8_t> seen_;

  bool ok_ = true;
  SolverStats stats_;

  [[nodiscard]] std::int8_t lit_value(Lit l) const {
    const std::int8_t a = assigns_[l.var()];
    if (a < 0) return -1;
    return l.sign() ? static_cast<std::int8_t>(1 - a) : a;
  }
  [[nodiscard]] std::int32_t decision_level() const {
    return static_cast<std::int32_t>(trail_lim_.size());
  }

  void enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<Lit>& learnt,
               std::int32_t& backtrack_level);
  void backtrack(std::int32_t level);
  Lit pick_branch();
  void bump(Var v);
  void decay() { var_inc_ /= 0.95; }
  void attach(ClauseRef cr);
  void update_memory_estimate();
};

// Part of the concurrency contract above: a plain-data stats struct cannot
// hide pointers into solver internals (or heap state of its own), so
// reading stats() from the owning thread and copying the result around
// stays trivially safe as solver instances move onto worker threads.
static_assert(std::is_trivially_copyable_v<SolverStats>,
              "SolverStats must stay plain data per the concurrency "
              "contract: no hidden references into solver internals");

}  // namespace tmg::sat
