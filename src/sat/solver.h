// Self-contained CDCL SAT solver (MiniSat-style): two-watched literals,
// VSIDS decision heuristic with phase saving, first-UIP clause learning and
// geometric restarts. Sized for the CNFs our bounded model checker emits
// (10^4..10^6 clauses).
//
// Concurrency contract (relied on by engine::Scheduler): this translation
// unit has no global or static mutable state and no hidden randomness —
// every heuristic (VSIDS bumping, phase saving, restart schedule) lives in
// Solver members. Distinct Solver instances may therefore be driven from
// distinct threads concurrently without synchronisation, and solving the
// same clause set always performs the identical search (same model, same
// statistics). A single instance is NOT thread-safe; do not share one
// across threads.
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

namespace tmg::sat {

using Var = std::int32_t;  // 0-based variable index

/// A literal: variable with polarity, encoded as 2*var + (negated ? 1 : 0).
struct Lit {
  std::int32_t code = -2;

  Lit() = default;
  Lit(Var v, bool negated) : code(2 * v + (negated ? 1 : 0)) {}

  [[nodiscard]] Var var() const { return code >> 1; }
  [[nodiscard]] bool sign() const { return code & 1; }  // true == negated
  [[nodiscard]] Lit operator~() const {
    Lit l;
    l.code = code ^ 1;
    return l;
  }
  friend bool operator==(const Lit&, const Lit&) = default;
};

inline Lit pos(Var v) { return Lit(v, false); }
inline Lit neg(Var v) { return Lit(v, true); }

enum class Result : std::uint8_t { Sat, Unsat, Unknown };

/// Solver statistics (also feeds the Table 2 "memory" column).
///
/// Thread-safety contract: a Solver instance is owned by exactly one
/// thread (one worker's warm bmc::Session), so these per-instance
/// counters stay plain integers on the hot propagate/decide loop.
/// Cross-thread aggregates (serve `metrics`, `--progress`) are published
/// separately through the atomic trace::MetricsRegistry counters
/// (solver.*, sat.solution_reuse, sat.trail_reuse) — never by sharing
/// this struct across threads.
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;
  std::uint64_t restarts = 0;
  /// Bytes held by the clause database and watch lists (estimate).
  std::uint64_t memory_bytes = 0;
};

class Solver {
 public:
  Var new_var();
  [[nodiscard]] std::size_t num_vars() const { return assigns_.size(); }
  [[nodiscard]] std::size_t num_clauses() const { return clauses_.size(); }
  /// Clauses handed to add_clause, BEFORE level-0 simplification. Unlike
  /// num_clauses() this is independent of the solver's assignment history,
  /// so callers that difference it across incremental queries (bmc::Session
  /// CNF accounting) see identical deltas on a warm and a fresh solver.
  [[nodiscard]] std::uint64_t clauses_requested() const {
    return clauses_requested_;
  }

  /// Adds a clause (empty clause makes the instance trivially unsat;
  /// duplicate/complementary literals are handled). Returns false if the
  /// instance became unsatisfiable at level 0.
  bool add_clause(std::vector<Lit> lits);
  bool add_clause(Lit a) { return add_clause(std::vector<Lit>{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(std::vector<Lit>{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) {
    return add_clause(std::vector<Lit>{a, b, c});
  }

  /// Solves under optional assumptions. `conflict_budget` < 0 = unlimited.
  Result solve(const std::vector<Lit>& assumptions = {},
               std::int64_t conflict_budget = -1);

  /// Model access after Result::Sat.
  [[nodiscard]] bool value(Var v) const { return assigns_[v] == 1; }

  /// Overrides the saved phase `v` will branch to when next decided.
  /// Incremental callers (bmc::Session) use this to point retired
  /// activation guards back at their harmless polarity: phase saving
  /// would otherwise re-assert a finished query's artifacts on every
  /// later solve.
  void set_phase(Var v, bool value) { saved_phase_[v] = value ? 1 : 0; }

  /// Forgets all branching heuristics — VSIDS activities, saved phases,
  /// the activity increment — returning the decision order to plain
  /// construction order, exactly the state a fresh solver starts from.
  /// Incremental callers invoke this between queries: activity and phase
  /// state tuned to one query's artifacts measurably misleads the search
  /// on the next (more conflicts, not fewer), while construction order
  /// tracks the circuit's data flow and is a strong default for every
  /// query. Learned clauses are kept — they are implied, order-free facts.
  /// Also rewinds the trail to level 0 and forgets the previous call's
  /// assumptions, so cross-query trail reuse never makes a warm search
  /// diverge from the fresh search it must mirror.
  void reset_heuristics();

  /// Moves `v` into (or out of) the deferred decision tier. Deferred
  /// variables are branched only once every live variable is assigned —
  /// incremental callers park retired artifacts' circuit variables there,
  /// because branching a dead gate output early constrains its inputs
  /// backwards through the circuit and causes conflicts a fresh solver
  /// (which does not have the dead circuit at all) never sees. Tier
  /// changes take full effect at the next reset_heuristics(), which
  /// rebuilds the decision order; they are only ever a branching-order
  /// steer, never a soundness concern. New variables start live.
  void set_deferred(Var v, bool deferred) { deferred_[v] = deferred ? 1 : 0; }

  [[nodiscard]] const SolverStats& stats() const { return stats_; }

 private:
  struct Clause {
    std::vector<Lit> lits;
    bool learned = false;
    double activity = 0.0;
  };
  using ClauseRef = std::int32_t;
  static constexpr ClauseRef kNoReason = -1;

  // assignment trail
  std::vector<std::int8_t> assigns_;  // -1 unset, 0 false, 1 true
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_lim_;
  std::size_t qhead_ = 0;
  std::vector<ClauseRef> reason_;
  std::vector<std::int32_t> level_;

  // clause database + watches (watches_[lit.code] = clauses watching lit).
  // Each watcher carries a blocker literal — a copy of the clause's other
  // watched literal. Propagation skips the clause entirely (no cache-missy
  // dereference) when the blocker is already true, which is the common
  // case; the blocker is refreshed whenever the watch moves. Purely a
  // constant-factor change: the visit order, unit implications and
  // conflicts are identical with or without it.
  struct Watcher {
    ClauseRef cr;
    Lit blocker;
  };
  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;

  // VSIDS
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<std::int8_t> saved_phase_;
  std::vector<std::int8_t> deferred_;  // 1 = branch after all live vars
  std::vector<std::uint8_t> seen_;

  // Decision order: binary heap over candidate variables, ordered by
  // (activity descending, index ascending). That is the exact total order
  // a linear argmax scan with strict-greater comparison realises, but at
  // O(log n) per operation — the difference matters for incremental use
  // (bmc::Session), where one solver accumulates variables across many
  // queries and a per-decision O(n) scan turns warm solves quadratic.
  // Assigned variables are removed lazily in pick_branch and re-inserted
  // on backtrack, so every unassigned variable is always in the heap.
  std::vector<Var> heap_;
  std::vector<std::int32_t> heap_pos_;  // var -> index in heap_, -1 absent

  // Incremental trail reuse across solve() calls. Assumption-owned
  // decision levels always form a prefix of the level stack (a backtrack
  // that unassigns an assumption also discards every level above it), and
  // everything on those levels is implied by the formula plus the
  // assumptions that established them. assumption_level_idx_[j] records
  // which index of the current solve's assumption vector owns level j+1;
  // the next solve keeps exactly the levels whose index falls inside the
  // longest common prefix with its own assumptions and rewinds the rest.
  // Callers issuing append-only assumption sequences (bmc witness
  // minimisation) then skip re-propagating the shared prefix entirely.
  std::vector<Lit> prev_assumptions_;
  std::vector<std::size_t> assumption_level_idx_;

  bool ok_ = true;
  std::uint64_t clauses_requested_ = 0;
  SolverStats stats_;

  [[nodiscard]] std::int8_t lit_value(Lit l) const {
    const std::int8_t a = assigns_[l.var()];
    if (a < 0) return -1;
    return l.sign() ? static_cast<std::int8_t>(1 - a) : a;
  }
  [[nodiscard]] std::int32_t decision_level() const {
    return static_cast<std::int32_t>(trail_lim_.size());
  }

  void enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<Lit>& learnt,
               std::int32_t& backtrack_level);
  void backtrack(std::int32_t level);
  Lit pick_branch();
  void bump(Var v);
  [[nodiscard]] bool order_before(Var a, Var b) const {
    if (deferred_[a] != deferred_[b]) return deferred_[a] < deferred_[b];
    return activity_[a] > activity_[b] ||
           (activity_[a] == activity_[b] && a < b);
  }
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  void heap_insert(Var v);
  void decay() { var_inc_ /= 0.95; }
  void attach(ClauseRef cr);
  void update_memory_estimate();
};

// Part of the concurrency contract above: a plain-data stats struct cannot
// hide pointers into solver internals (or heap state of its own), so
// reading stats() from the owning thread and copying the result around
// stays trivially safe as solver instances move onto worker threads.
static_assert(std::is_trivially_copyable_v<SolverStats>,
              "SolverStats must stay plain data per the concurrency "
              "contract: no hidden references into solver internals");

}  // namespace tmg::sat
