#include "sat/solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "support/trace.h"

namespace tmg::sat {

Var Solver::new_var() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(-1);
  reason_.push_back(kNoReason);
  level_.push_back(0);
  activity_.push_back(0.0);
  saved_phase_.push_back(0);
  deferred_.push_back(0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_pos_.push_back(-1);
  heap_insert(v);
  return v;
}

void Solver::heap_sift_up(std::size_t i) {
  const Var v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!order_before(v, heap_[parent])) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::int32_t>(i);
}

void Solver::heap_sift_down(std::size_t i) {
  const Var v = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && order_before(heap_[child + 1], heap_[child]))
      ++child;
    if (!order_before(heap_[child], v)) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::int32_t>(i);
}

void Solver::heap_insert(Var v) {
  if (heap_pos_[v] >= 0) return;
  heap_.push_back(v);
  heap_pos_[v] = static_cast<std::int32_t>(heap_.size() - 1);
  heap_sift_up(heap_.size() - 1);
}

void Solver::reset_heuristics() {
  // Also sever trail reuse from the previous query: the next solve must
  // re-establish its assumptions from level 0, exactly as a fresh solver
  // would, so warm and fresh searches stay step-for-step identical.
  backtrack(0);
  prev_assumptions_.clear();
  std::fill(activity_.begin(), activity_.end(), 0.0);
  std::fill(saved_phase_.begin(), saved_phase_.end(), 0);
  var_inc_ = 1.0;
  // With equal activities the order is (tier, index), so inserting the
  // live tier ascending and then the deferred tier ascending feeds the
  // heap in sorted order — the invariant holds without any sifting.
  heap_.clear();
  std::fill(heap_pos_.begin(), heap_pos_.end(), -1);
  for (Var v = 0; v < static_cast<Var>(assigns_.size()); ++v)
    if (assigns_[v] == -1 && deferred_[v] == 0) heap_insert(v);
  for (Var v = 0; v < static_cast<Var>(assigns_.size()); ++v)
    if (assigns_[v] == -1 && deferred_[v] != 0) heap_insert(v);
}

bool Solver::add_clause(std::vector<Lit> lits) {
  if (!ok_) return false;
  ++clauses_requested_;
  // Clauses may be added between solve() calls; drop any leftover search
  // state so level-0 simplifications below are sound.
  backtrack(0);

  // normalise: sort, dedupe, drop clauses with complementary literals and
  // literals already false at level 0.
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.code < b.code; });
  std::vector<Lit> out;
  for (std::size_t i = 0; i < lits.size(); ++i) {
    if (i > 0 && lits[i] == lits[i - 1]) continue;
    if (i > 0 && lits[i] == ~lits[i - 1]) return true;  // tautology
    const std::int8_t v = lit_value(lits[i]);
    if (v == 1) return true;  // already satisfied at level 0
    if (v == 0) continue;     // already false: drop literal
    out.push_back(lits[i]);
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], kNoReason);
    if (propagate() != kNoReason) ok_ = false;
    return ok_;
  }
  clauses_.push_back(Clause{std::move(out), false, 0.0});
  attach(static_cast<ClauseRef>(clauses_.size() - 1));
  return true;
}

void Solver::attach(ClauseRef cr) {
  const Clause& c = clauses_[cr];
  watches_[(~c.lits[0]).code].push_back(Watcher{cr, c.lits[1]});
  watches_[(~c.lits[1]).code].push_back(Watcher{cr, c.lits[0]});
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  assert(lit_value(l) == -1);
  assigns_[l.var()] = l.sign() ? 0 : 1;
  reason_[l.var()] = reason;
  level_[l.var()] = decision_level();
  trail_.push_back(l);
}

Solver::ClauseRef Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    // clauses watching ~p need a new watch or become unit/conflicting
    std::vector<Watcher>& ws = watches_[p.code];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      const Watcher w = ws[i];
      if (lit_value(w.blocker) == 1) {
        ws[keep++] = w;  // blocker true: clause satisfied, skip it
        continue;
      }
      const ClauseRef cr = w.cr;
      Clause& c = clauses_[cr];
      // ensure the falsified literal is lits[1]
      const Lit false_lit = ~p;
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      assert(c.lits[1] == false_lit);
      if (lit_value(c.lits[0]) == 1) {
        ws[keep++] = Watcher{cr, c.lits[0]};  // satisfied: keep watching
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (lit_value(c.lits[k]) != 0) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c.lits[1]).code].push_back(Watcher{cr, c.lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // unit or conflict
      ws[keep++] = Watcher{cr, c.lits[0]};
      if (lit_value(c.lits[0]) == 0) {
        // conflict: restore remaining watches and report
        for (std::size_t j = i + 1; j < ws.size(); ++j) ws[keep++] = ws[j];
        ws.resize(keep);
        qhead_ = trail_.size();
        return cr;
      }
      enqueue(c.lits[0], cr);
    }
    ws.resize(keep);
  }
  return kNoReason;
}

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& learnt,
                     std::int32_t& backtrack_level) {
  learnt.clear();
  learnt.push_back(Lit());  // slot for the asserting literal
  std::int32_t counter = 0;
  Lit p;
  p.code = -2;
  std::size_t index = trail_.size();

  ClauseRef reason = conflict;
  do {
    assert(reason != kNoReason);
    Clause& c = clauses_[reason];
    if (c.learned) c.activity += 1.0;
    const std::size_t start = (p.code == -2) ? 0 : 1;
    for (std::size_t i = start; i < c.lits.size(); ++i) {
      const Lit q = c.lits[i];
      if (seen_[q.var()] || level_[q.var()] == 0) continue;
      seen_[q.var()] = 1;
      bump(q.var());
      if (level_[q.var()] >= decision_level())
        ++counter;
      else
        learnt.push_back(q);
    }
    // pick next literal from the trail
    while (!seen_[trail_[index - 1].var()]) --index;
    p = trail_[--index];
    seen_[p.var()] = 0;
    reason = reason_[p.var()];
    --counter;
  } while (counter > 0);
  learnt[0] = ~p;

  // backtrack level = second-highest level in the learnt clause
  backtrack_level = 0;
  std::size_t max_i = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (level_[learnt[i].var()] > backtrack_level) {
      backtrack_level = level_[learnt[i].var()];
      max_i = i;
    }
  }
  if (learnt.size() > 1) std::swap(learnt[1], learnt[max_i]);
  for (const Lit& l : learnt) seen_[l.var()] = 0;
}

void Solver::backtrack(std::int32_t lvl) {
  if (static_cast<std::size_t>(lvl) < assumption_level_idx_.size())
    assumption_level_idx_.resize(static_cast<std::size_t>(lvl));
  if (decision_level() <= lvl) return;
  for (std::size_t i = trail_.size(); i > trail_lim_[lvl];) {
    --i;
    const Var v = trail_[i].var();
    saved_phase_[v] = assigns_[v];
    assigns_[v] = -1;
    reason_[v] = kNoReason;
    heap_insert(v);
  }
  trail_.resize(trail_lim_[lvl]);
  trail_lim_.resize(lvl);
  qhead_ = trail_.size();
}

void Solver::bump(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
    // Rescaling preserves relative order except where underflow collapses
    // tiny activities into a tie; re-heapify wholesale (rare) so the heap
    // invariant survives even those.
    for (std::size_t i = heap_.size(); i > 0;) heap_sift_down(--i);
    return;
  }
  if (heap_pos_[v] >= 0)
    heap_sift_up(static_cast<std::size_t>(heap_pos_[v]));
}

Lit Solver::pick_branch() {
  while (!heap_.empty()) {
    const Var v = heap_[0];
    const Var last = heap_.back();
    heap_.pop_back();
    heap_pos_[v] = -1;
    if (!heap_.empty()) {
      heap_[0] = last;
      heap_pos_[last] = 0;
      heap_sift_down(0);
    }
    // Lazy removal: vars assigned by propagation since their insertion
    // surface here and are simply dropped (backtrack re-inserts them).
    if (assigns_[v] == -1) return Lit(v, saved_phase_[v] == 0);
  }
  return Lit();
}

void Solver::update_memory_estimate() {
  std::uint64_t bytes = 0;
  for (const Clause& c : clauses_)
    bytes += sizeof(Clause) + c.lits.size() * sizeof(Lit);
  for (const auto& w : watches_) bytes += w.capacity() * sizeof(Watcher);
  bytes += assigns_.size() *
           (sizeof(std::int8_t) * 3 + sizeof(double) + sizeof(std::int32_t) +
            sizeof(ClauseRef));
  stats_.memory_bytes = std::max(stats_.memory_bytes, bytes);
}

Result Solver::solve(const std::vector<Lit>& assumptions,
                     std::int64_t conflict_budget) {
  if (!ok_) return Result::Unsat;
  // Solution reuse: when the previous solve left a complete, fully
  // propagated assignment (add_clause and new_var both invalidate it)
  // that already satisfies every assumption, that assignment is a model
  // of this query too — answer without searching, keeping the model
  // readable via value(). Incremental pin sequences (bmc witness
  // minimisation) satisfy roughly half their probes this way.
  if (trail_.size() == assigns_.size() && qhead_ == trail_.size()) {
    bool satisfied = true;
    for (const Lit& a : assumptions)
      if (lit_value(a) != 1) {
        satisfied = false;
        break;
      }
    if (satisfied) {
      static trace::Counter& reuse =
          trace::MetricsRegistry::instance().counter("sat.solution_reuse");
      reuse.add();
      return Result::Sat;
    }
  }
  // Trail reuse: decision levels established for assumptions this call
  // shares with the previous one (their longest common prefix) carry only
  // implications of those shared assumptions, so they can stay; everything
  // above is rewound. Append-only assumption sequences — the bmc witness
  // minimiser grows its pin list one literal at a time — thus skip
  // re-propagating the whole formula on every probe. Any pending units or
  // conflicts surface in the main loop's first propagate().
  std::size_t lcp = 0;
  while (lcp < prev_assumptions_.size() && lcp < assumptions.size() &&
         prev_assumptions_[lcp] == assumptions[lcp])
    ++lcp;
  std::int32_t keep = 0;
  while (static_cast<std::size_t>(keep) < assumption_level_idx_.size() &&
         assumption_level_idx_[keep] < lcp)
    ++keep;
  if (keep > 0) {
    static trace::Counter& reuse =
        trace::MetricsRegistry::instance().counter("sat.trail_reuse");
    reuse.add();
  }
  backtrack(keep);
  prev_assumptions_ = assumptions;

  std::uint64_t restart_limit = 100;
  std::uint64_t conflicts_since_restart = 0;
  std::int64_t conflicts_total = 0;

  for (;;) {
    const ClauseRef conflict = propagate();
    if (conflict != kNoReason) {
      ++stats_.conflicts;
      ++conflicts_since_restart;
      ++conflicts_total;
      if (decision_level() == 0) {
        ok_ = false;
        update_memory_estimate();
        return Result::Unsat;
      }
      std::vector<Lit> learnt;
      std::int32_t back_level = 0;
      analyze(conflict, learnt, back_level);
      // If the conflict is below the assumption prefix, drop to level 0
      // conservatively (assumptions re-enqueued below).
      backtrack(back_level);
      if (learnt.size() == 1) {
        if (lit_value(learnt[0]) == 0) {
          backtrack(0);
          if (lit_value(learnt[0]) == 0) {
            ok_ = false;
            update_memory_estimate();
            return Result::Unsat;
          }
        }
        if (lit_value(learnt[0]) == -1) enqueue(learnt[0], kNoReason);
      } else {
        clauses_.push_back(Clause{std::move(learnt), true, 0.0});
        const ClauseRef cr = static_cast<ClauseRef>(clauses_.size() - 1);
        attach(cr);
        ++stats_.learned_clauses;
        stats_.learned_literals += clauses_[cr].lits.size();
        if (lit_value(clauses_[cr].lits[0]) == -1)
          enqueue(clauses_[cr].lits[0], cr);
      }
      decay();
      if (conflict_budget >= 0 && conflicts_total >= conflict_budget) {
        update_memory_estimate();
        return Result::Unknown;
      }
      if (conflicts_since_restart >= restart_limit) {
        ++stats_.restarts;
        restart_limit = restart_limit * 3 / 2;
        conflicts_since_restart = 0;
        backtrack(0);
      }
      continue;
    }

    // re-establish assumptions after any backtracking
    bool assumption_pending = false;
    for (std::size_t i = 0; i < assumptions.size(); ++i) {
      const Lit a = assumptions[i];
      const std::int8_t v = lit_value(a);
      if (v == 0) {
        if (decision_level() >
            static_cast<std::int32_t>(assumption_level_idx_.size())) {
          // Falsified above the assumption prefix: only branch decisions
          // (e.g. a carried-over model from trail reuse) are to blame.
          // Rewind to the prefix and re-examine.
          backtrack(static_cast<std::int32_t>(assumption_level_idx_.size()));
          assumption_pending = true;
          break;
        }
        // At the prefix itself the falsification is implied by the
        // formula and earlier assumptions alone: genuinely unsat.
        update_memory_estimate();
        return Result::Unsat;  // assumption conflicts (no core extraction)
      }
      if (v == -1) {
        trail_lim_.push_back(trail_.size());
        assumption_level_idx_.push_back(i);
        enqueue(a, kNoReason);
        assumption_pending = true;
        break;
      }
    }
    if (assumption_pending) continue;

    const Lit next = pick_branch();
    if (next.code == -2) {
      update_memory_estimate();
      return Result::Sat;  // full assignment
    }
    ++stats_.decisions;
    trail_lim_.push_back(trail_.size());
    enqueue(next, kNoReason);
  }
}

}  // namespace tmg::sat
