// Program segments: the units of the paper's execution-time model.
//
// A program segment (PS) is a subgraph of the CFG entered via a single
// control edge; a structured PS (SPS) additionally has a single exit edge.
// The partitioner emits two kinds of segments: whole structure-tree regions
// (measured path-by-path) and single basic blocks (the smallest PS).
#pragma once

#include <cstdint>
#include <vector>

#include "cfg/paths.h"
#include "cfg/structure.h"
#include "support/path_count.h"

namespace tmg::core {

enum class SegmentKind : std::uint8_t {
  Block,   // one basic block
  Region,  // a whole structure-tree arm (or the whole function)
};

/// One measured unit. Instrumentation cost is two points (begin/end);
/// measurement cost is one run per path through the segment.
struct Segment {
  std::uint32_t id = 0;
  SegmentKind kind = SegmentKind::Block;

  /// Region segments: the arm measured as a whole (nullptr for Block
  /// segments). Whole-function segments point at FunctionCfg::body.
  const cfg::Arm* region = nullptr;
  /// Block segments: the measured block.
  cfg::BlockId block = cfg::kInvalidBlock;

  /// All blocks covered by this segment.
  std::vector<cfg::BlockId> blocks;
  /// Structural paths through the segment == measurements needed.
  PathCount paths;
  bool whole_function = false;
};

/// Result of partitioning one function at a given path bound.
struct Partition {
  std::uint64_t path_bound = 0;
  std::vector<Segment> segments;

  /// ip — the paper counts two instrumentation points per segment.
  [[nodiscard]] std::uint64_t instrumentation_points() const {
    return 2 * static_cast<std::uint64_t>(segments.size());
  }
  /// m — total measurements: sum of per-segment path counts.
  [[nodiscard]] PathCount measurements() const {
    PathCount m(0);
    for (const Segment& s : segments) m += s.paths;
    return m;
  }
};

}  // namespace tmg::core
