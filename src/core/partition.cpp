#include "core/partition.h"

#include <set>
#include <sstream>
#include <unordered_set>

namespace tmg::core {

using cfg::Arm;
using cfg::ArmItem;
using cfg::BlockId;
using cfg::Construct;
using cfg::FunctionCfg;
using cfg::PathAnalysis;

namespace {

class Partitioner {
 public:
  Partitioner(const FunctionCfg& f, const PathAnalysis& pa,
              const PartitionOptions& opts)
      : f_(f), pa_(pa), opts_(opts) {}

  Partition run() {
    Partition out;
    out.path_bound = opts_.path_bound;
    result_ = &out;

    const PathCount total = pa_.function_paths();
    if (total.le(opts_.path_bound)) {
      Segment s;
      s.kind = SegmentKind::Region;
      s.region = &f_.body;
      s.blocks = f_.body.blocks();
      s.paths = total;
      s.whole_function = true;
      emit(std::move(s));
    } else {
      visit_arm(f_.body);
    }
    return out;
  }

 private:
  void emit(Segment s) {
    s.id = static_cast<std::uint32_t>(result_->segments.size());
    result_->segments.push_back(std::move(s));
  }

  void emit_block(BlockId b) {
    Segment s;
    s.kind = SegmentKind::Block;
    s.block = b;
    s.blocks = {b};
    s.paths = PathCount(1);
    emit(std::move(s));
  }

  /// Decomposes an arm: plain blocks and decision blocks become block
  /// segments; sub-arms are merged when small enough, else recursed into.
  void visit_arm(const Arm& arm) {
    for (const ArmItem& item : arm.items) {
      if (item.is_block()) {
        emit_block(item.block);
        continue;
      }
      const Construct& c = *item.construct;
      emit_block(c.decision);
      for (const Arm& sub : c.arms) {
        if (sub.empty()) continue;  // contributes a path but no blocks
        const PathCount paths = pa_.arm_paths(sub);
        if (sub.single_entry && paths.le(opts_.path_bound)) {
          Segment s;
          s.kind = SegmentKind::Region;
          s.region = &sub;
          s.blocks = sub.blocks();
          s.paths = paths;
          emit(std::move(s));
        } else {
          visit_arm(sub);
        }
      }
    }
  }

  const FunctionCfg& f_;
  const PathAnalysis& pa_;
  PartitionOptions opts_;
  Partition* result_ = nullptr;
};

}  // namespace

Partition partition_function(const FunctionCfg& f, const PathAnalysis& pa,
                             const PartitionOptions& opts) {
  return Partitioner(f, pa, opts).run();
}

std::uint64_t fused_instrumentation_points(const FunctionCfg& f,
                                           const Partition& p) {
  // A marker site is a control edge carrying at least one begin or end
  // marker; begin markers sit on the edges entering a segment, end markers
  // on the edges leaving it. The virtual edges into the function entry and
  // out of the function exit each count as one site.
  std::set<std::pair<BlockId, std::uint32_t>> sites;
  bool function_entry_site = false;
  bool function_exit_site = false;

  for (const Segment& s : p.segments) {
    std::unordered_set<BlockId> members(s.blocks.begin(), s.blocks.end());
    for (BlockId b : s.blocks) {
      // entering edges: predecessors outside the segment
      for (BlockId pred : f.graph.preds()[b]) {
        if (members.count(pred)) continue;
        const auto& succs = f.graph.block(pred).succs;
        for (std::uint32_t i = 0; i < succs.size(); ++i)
          if (succs[i].to == b) sites.insert({pred, i});
      }
      if (b == f.graph.entry()) function_entry_site = true;
      // leaving edges
      const auto& succs = f.graph.block(b).succs;
      for (std::uint32_t i = 0; i < succs.size(); ++i)
        if (!members.count(succs[i].to)) sites.insert({b, i});
      if (b == f.graph.exit_block()) function_exit_site = true;
    }
  }
  return sites.size() + (function_entry_site ? 1 : 0) +
         (function_exit_site ? 1 : 0);
}

std::string validate_partition(const FunctionCfg& f, const Partition& p) {
  std::ostringstream err;
  // 1. coverage: every reachable block in exactly one segment
  std::vector<int> covered(f.graph.size(), 0);
  for (const Segment& s : p.segments)
    for (BlockId b : s.blocks) ++covered[b];
  const auto reach = f.graph.reachable();
  for (BlockId b = 0; b < f.graph.size(); ++b) {
    if (reach[b] && covered[b] != 1) {
      err << "block " << b << " covered " << covered[b] << " times; ";
    }
  }
  // 2. single entry for region segments
  for (const Segment& s : p.segments) {
    if (s.kind != SegmentKind::Region || s.whole_function) continue;
    std::unordered_set<BlockId> members(s.blocks.begin(), s.blocks.end());
    const BlockId first = cfg::arm_entry_block(*s.region);
    std::size_t external_edges = 0;
    for (BlockId b : s.blocks) {
      for (BlockId pred : f.graph.preds()[b]) {
        if (members.count(pred)) continue;
        const auto& succs = f.graph.block(pred).succs;
        for (const auto& e : succs)
          if (e.to == b && !e.back) ++external_edges;
      }
    }
    if (external_edges != 1)
      err << "segment " << s.id << " (entry block " << first << ") has "
          << external_edges << " entry edges; ";
  }
  return err.str();
}

}  // namespace tmg::core
