// The paper's CFG partitioning algorithm (Section 2.2).
//
// Top-down over the structure tree: a region whose internal path count is
// <= the bound b becomes one segment (measured as a whole); otherwise it is
// decomposed — its plain blocks and decision blocks become block segments
// and its sub-arms are processed recursively.
#pragma once

#include "core/segment.h"

namespace tmg::core {

struct PartitionOptions {
  /// The path bound b: regions with at most this many paths are measured
  /// as a whole.
  std::uint64_t path_bound = 1;
};

/// Partitions one function. `pa` must be a PathAnalysis over `f`.
Partition partition_function(const cfg::FunctionCfg& f,
                             const cfg::PathAnalysis& pa,
                             const PartitionOptions& opts);

/// Number of distinct physical instrumentation sites after fusing markers
/// that fall on the same control edge (the paper's footnote 1: consecutive
/// begin/end points merge, ~ip/2 + 1 for chains).
std::uint64_t fused_instrumentation_points(const cfg::FunctionCfg& f,
                                           const Partition& p);

/// Checks the PS invariant: every emitted Region segment is entered by
/// exactly one control edge from outside its block set, and the segments
/// cover every reachable block exactly once. Returns an empty string when
/// valid, else a description of the violation. Used by tests and asserts.
std::string validate_partition(const cfg::FunctionCfg& f, const Partition& p);

}  // namespace tmg::core
