// The six state-space optimisations of Section 3.2, as rewrite passes over
// the transition system. None of them changes the modelled behaviour — they
// make the *representation* more compact, exactly as the paper stresses:
// smaller state vectors (fewer bits) and/or fewer transitions to the goal.
//
//  Pass                   | primary effect
//  -----------------------|-----------------------------------------------
//  ReverseCse             | temporaries inlined into their uses, removed
//  LiveVariables          | unused vars dropped; disjoint-lifetime vars
//                         | share one slot
//  StatementConcat        | independent consecutive transitions merged
//                         | (fewer steps to the goal)
//  RangeAnalysis          | value ranges narrowed -> fewer encoding bits
//  VariableInit           | uninitialised vars pinned to their C-semantic
//                         | initial values (smaller reachable set D_R)
//  DeadVariableElim       | vars (and their updates) that never influence
//                         | control flow removed
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tsys/tsys.h"

namespace tmg::opt {

enum class Pass : std::uint8_t {
  ReverseCse,
  LiveVariables,
  StatementConcat,
  RangeAnalysis,
  VariableInit,
  DeadVariableElim,
};

std::string pass_name(Pass p);

/// Inverse of pass_name (exact match); nullopt for unknown names.
std::optional<Pass> parse_pass(std::string_view name);

/// All passes in the canonical "all optimisations" order (dependencies:
/// CSE exposes dead vars; init enables range narrowing; concatenation runs
/// last so update-free transitions merge away).
std::vector<Pass> all_passes();

/// What one pass did (for reporting and the Table 2 bench).
struct PassReport {
  Pass pass = Pass::ReverseCse;
  std::size_t vars_before = 0, vars_after = 0;
  int data_bits_before = 0, data_bits_after = 0;
  std::size_t transitions_before = 0, transitions_after = 0;
  /// Required BMC unroll depth around this pass, recomputed from the
  /// transition system by the driver (0 when the caller does not track
  /// depth — run_pass / run_passes leave these untouched).
  std::uint32_t depth_before = 0, depth_after = 0;
  std::size_t details = 0;  // substitutions / merges / pins, pass-specific
};

/// Applies one pass in place.
PassReport run_pass(tsys::TransitionSystem& ts, Pass pass);

/// Applies one pass in place, composing the old->new VarId remapping into
/// `var_map` (which must hold one entry per pre-pass variable of the
/// ORIGINAL system, kNoVar for already-removed ids). This is the
/// per-pass building block run_passes_mapped loops over; the driver uses
/// it directly to interleave depth recomputation between passes.
PassReport run_pass_mapped(tsys::TransitionSystem& ts, Pass pass,
                           std::vector<tsys::VarId>& var_map);

/// Applies a sequence of passes; returns one report per pass.
std::vector<PassReport> run_passes(tsys::TransitionSystem& ts,
                                   const std::vector<Pass>& passes);

/// run_passes plus the composed variable remapping, which callers holding
/// external VarId references (the driver's symbol->var table, witnesses)
/// need to stay consistent with the optimised system.
struct OptResult {
  std::vector<PassReport> reports;
  /// Pre-optimisation VarId -> post-optimisation VarId (kNoVar removed).
  std::vector<tsys::VarId> var_map;
};
OptResult run_passes_mapped(tsys::TransitionSystem& ts,
                            const std::vector<Pass>& passes);

/// Removes variables whose id is not marked in `keep`, remapping every
/// reference. Asserts that removed variables are truly unreferenced.
/// Returns the old->new id map (kNoVar for removed variables).
std::vector<tsys::VarId> remove_vars(tsys::TransitionSystem& ts,
                                     const std::vector<bool>& keep);

/// Renumbers locations densely (dropping unused ones) and updates
/// initial/final/num_locs. Run after StatementConcat.
void compact_locations(tsys::TransitionSystem& ts);

/// Deterministic concrete execution of the transition system: returns the
/// sequence of decision events (origin block, successor index) until the
/// final location or `max_steps`. `inputs` holds one value per input
/// variable, in VarId order (passes never remove or reorder inputs);
/// non-input variables start at their pinned `init` or, when unpinned, at
/// their C-semantic initial value. Used by equivalence tests: every pass
/// must preserve this observable for all inputs.
std::vector<std::pair<cfg::BlockId, std::uint32_t>> run_concrete(
    const tsys::TransitionSystem& ts, const std::vector<std::int64_t>& inputs,
    std::uint64_t max_steps = 100000);

}  // namespace tmg::opt
