#include "opt/passes.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <optional>

#include "minic/eval.h"

namespace tmg::opt {

using cfg::BlockId;
using minic::Type;
using tsys::kNoVar;
using tsys::Loc;
using tsys::TExpr;
using tsys::TExprKind;
using tsys::TExprPtr;
using tsys::Transition;
using tsys::TransitionSystem;
using tsys::Update;
using tsys::VarId;
using tsys::VarInfo;

namespace {

/// Substituted / composed expressions larger than this are not worth the
/// CNF growth they cause downstream; the pass simply skips the rewrite.
constexpr std::size_t kMaxExprSize = 128;

void collect_expr_vars(const TExpr* e, std::vector<VarId>& out) {
  if (e != nullptr) e->collect_vars(out);
}

/// Variables read by a transition (guard plus every update RHS), with
/// duplicates.
std::vector<VarId> transition_reads(const Transition& t) {
  std::vector<VarId> reads;
  collect_expr_vars(t.guard.get(), reads);
  for (const Update& u : t.updates) collect_expr_vars(u.value.get(), reads);
  return reads;
}

/// Wraps `e` to exactly `type` (explicit conversion node, mirroring the
/// translator's coerce and eval_unop(Plus) semantics).
TExprPtr coerce(TExprPtr e, Type type) {
  if (e->type == type) return e;
  return t_unary(minic::UnOp::Plus, std::move(e), type);
}

/// Clones `e` with every read of a variable updated in `by` replaced by
/// that update's RHS (evaluated in the pre-state). The substitution is
/// simultaneous: injected RHS trees are not rewritten again, which matters
/// when one update's RHS reads another updated variable.
TExprPtr subst_parallel(const TExpr& e, const TransitionSystem& ts,
                        const std::map<VarId, const Update*>& by) {
  if (e.kind == TExprKind::Var) {
    const auto it = by.find(e.var);
    if (it != by.end()) {
      // Stored values are wrapped to the variable's type before any use
      // re-wraps them to the read type; keep both conversions explicit.
      TExprPtr r = coerce(it->second->value->clone(), ts.vars[e.var].type);
      return coerce(std::move(r), e.type);
    }
  }
  // Shallow copy of the node itself; each subtree is produced exactly once
  // by the recursion (a full clone() here would copy every subtree once
  // per ancestor, only to be thrown away).
  auto c = std::make_unique<TExpr>();
  c->kind = e.kind;
  c->type = e.type;
  c->value = e.value;
  c->var = e.var;
  c->un_op = e.un_op;
  c->bin_op = e.bin_op;
  c->args.reserve(e.args.size());
  for (const TExprPtr& a : e.args)
    c->args.push_back(subst_parallel(*a, ts, by));
  return c;
}

/// Incoming transition indices per location.
std::vector<std::vector<std::size_t>> in_index(const TransitionSystem& ts) {
  std::vector<std::vector<std::size_t>> in(ts.num_locs);
  for (std::size_t i = 0; i < ts.transitions.size(); ++i)
    in[ts.transitions[i].to].push_back(i);
  return in;
}

// ------------------------------------------------------------- liveness

/// live[L][v]: v may be read before being written on some run from L.
/// Backward fixpoint over the transitions; weak liveness (every RHS read
/// counts) — the transitive "does it reach a guard" question is
/// DeadVariableElim's job.
std::vector<std::vector<bool>> compute_liveness(const TransitionSystem& ts) {
  std::vector<std::vector<bool>> live(
      ts.num_locs, std::vector<bool>(ts.vars.size(), false));
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Transition& t : ts.transitions) {
      std::vector<bool> in = live[t.to];
      for (const Update& u : t.updates) in[u.var] = false;
      for (VarId v : transition_reads(t)) in[v] = true;
      for (std::size_t v = 0; v < in.size(); ++v) {
        if (in[v] && !live[t.from][v]) {
          live[t.from][v] = true;
          changed = true;
        }
      }
    }
  }
  return live;
}

void renumber_transition_ids(TransitionSystem& ts) {
  for (std::size_t i = 0; i < ts.transitions.size(); ++i)
    ts.transitions[i].id = static_cast<std::uint32_t>(i);
}

/// Rewrites every reference of `from` to `to` in place (reads keep their
/// use-site type; `to` must have the same VarInfo type as `from`).
void rename_var_in_expr(TExpr& e, VarId from, VarId to) {
  if (e.kind == TExprKind::Var && e.var == from) e.var = to;
  for (const TExprPtr& a : e.args) rename_var_in_expr(*a, from, to);
}

// ---------------------------------------------------------- ReverseCse

/// Available copy bindings at one location: v -> defining expression, with
/// "every run reaching here last assigned v := e and none of e's operands
/// changed since" as the invariant. Bindings own shared clones of the
/// defining trees — the substitution phase rewrites the transitions the
/// originals live in, so borrowing pointers into them would dangle.
using CopyMap = std::map<VarId, std::shared_ptr<const TExpr>>;

/// Transfer of one transition over an incoming copy map: bindings whose
/// variable or operands are (parallel-)written die; each update `v := e`
/// whose operands survive the step generates `v -> e`.
CopyMap copy_transfer(const Transition& t, const CopyMap& in,
                      std::size_t num_vars) {
  std::vector<bool> written(num_vars, false);
  for (const Update& u : t.updates) written[u.var] = true;

  const auto operands_stable = [&](const TExpr& e) {
    std::vector<VarId> vars;
    e.collect_vars(vars);
    for (VarId v : vars)
      if (written[v]) return false;
    return true;
  };

  CopyMap out;
  for (const auto& [v, e] : in)
    if (!written[v] && operands_stable(*e)) out.emplace(v, e);
  for (const Update& u : t.updates)
    if (operands_stable(*u.value))
      out[u.var] = std::shared_ptr<const TExpr>(u.value->clone().release());
  return out;
}

/// Meet at a join point: equality intersection. Keeps a binding only when
/// both arms established the same defining expression — which is exactly
/// how temporaries materialised identically on both branch arms survive
/// past the join.
bool copy_intersect(CopyMap& into, const CopyMap& with) {
  bool shrunk = false;
  for (auto it = into.begin(); it != into.end();) {
    const auto other = with.find(it->first);
    if (other == with.end() || !other->second->equals(*it->second)) {
      it = into.erase(it);
      shrunk = true;
    } else {
      ++it;
    }
  }
  return shrunk;
}

/// Forward available-copies fixpoint over the location graph. Bottom
/// (unreached) locations are represented by absence; the initial location
/// starts with no bindings (free initial values define nothing).
std::vector<std::optional<CopyMap>> compute_copies(
    const TransitionSystem& ts) {
  std::vector<std::optional<CopyMap>> avail(ts.num_locs);
  avail[ts.initial].emplace();
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Transition& t : ts.transitions) {
      if (!avail[t.from]) continue;
      CopyMap out = copy_transfer(t, *avail[t.from], ts.vars.size());
      if (!avail[t.to]) {
        avail[t.to] = std::move(out);
        changed = true;
      } else if (copy_intersect(*avail[t.to], out)) {
        changed = true;
      }
    }
  }
  return avail;
}

/// Inlines defining expressions into the reads they dominate: wherever the
/// available-copies analysis proves `v == e` at a transition's source
/// location, reads of v in its guard and update RHSs can evaluate e
/// directly. Unlike a single-predecessor rule this survives joins (the
/// value-numbering case: the same temporary materialised on both branch
/// arms), so the variable becomes removable once no read remains
/// (LiveVariables / DeadVariableElim pick it up).
std::size_t reverse_cse(TransitionSystem& ts) {
  std::size_t substitutions = 0;
  bool changed = true;
  // Substitutions re-expose copies (a chain t2 := t1 + 1 inlines one hop
  // per round); the round cap bounds pathological ping-pong between
  // mutually-copied variables, which the size caps alone cannot.
  for (int round = 0; changed && round < 16; ++round) {
    changed = false;
    const auto avail = compute_copies(ts);
    for (Transition& t : ts.transitions) {
      if (!avail[t.from] || avail[t.from]->empty()) continue;
      const CopyMap& copies = *avail[t.from];
      for (const auto& [v, e] : copies) {
        if (e->references(v) || e->size() > kMaxExprSize / 4) continue;
        if (e->kind == TExprKind::Var) {
          // Skip one half of a mutual copy pair (v == w and w == v hold
          // simultaneously after a swap-shaped join): substituting both
          // directions would oscillate forever.
          const auto back = copies.find(e->var);
          if (back != copies.end() && back->second->kind == TExprKind::Var &&
              back->second->var == v && e->var < v)
            continue;
        }
        const TExprPtr repl = coerce(e->clone(), ts.vars[v].type);
        std::size_t n = 0;
        if (t.guard && t.guard->size() <= kMaxExprSize)
          n += substitute(t.guard, v, *repl);
        for (Update& u : t.updates)
          if (u.value->size() <= kMaxExprSize)
            n += substitute(u.value, v, *repl);
        substitutions += n;
        if (n > 0) changed = true;
      }
    }
  }
  return substitutions;
}

/// Folds a pass-local old->new map into an accumulated one.
void compose_map(std::vector<VarId>& acc, const std::vector<VarId>& step) {
  for (VarId& v : acc)
    if (v != kNoVar) v = step[v];
}

// ------------------------------------------------------- LiveVariables

/// Drops variables that are never read anywhere (their updates with them)
/// and coalesces never-simultaneously-live variables of identical shape
/// into one slot. `var_map` receives the old->new id mapping.
std::size_t live_variables(TransitionSystem& ts,
                           std::vector<VarId>& var_map) {
  std::size_t details = 0;

  // 1. Unused variables: never read by any guard or RHS. Inputs stay (they
  // are the test-data interface even when the body ignores them).
  std::vector<bool> read(ts.vars.size(), false);
  for (const Transition& t : ts.transitions)
    for (VarId v : transition_reads(t)) read[v] = true;
  std::vector<bool> keep(ts.vars.size(), false);
  for (const VarInfo& v : ts.vars) keep[v.id] = read[v.id] || v.is_input;
  bool any_removed = false;
  for (std::size_t v = 0; v < keep.size(); ++v) any_removed |= !keep[v];
  if (any_removed) {
    for (Transition& t : ts.transitions) {
      std::erase_if(t.updates,
                    [&](const Update& u) { return !keep[u.var]; });
    }
    for (bool k : keep) details += k ? 0 : 1;
    compose_map(var_map, remove_vars(ts, keep));
  }

  // 2. Slot sharing. Two non-input variables of identical shape (type,
  // domain, init) that are never live at the same time can share one slot:
  // every read still sees its own dominating write. A variable that is
  // live at entry depends on its free initial value and is only mergeable
  // when that value is pinned (both pinned to the same init by the shape
  // check).
  const auto live = compute_liveness(ts);
  const std::size_t n = ts.vars.size();
  auto mergeable = [&](const VarInfo& v) {
    return !v.is_input && (v.has_init || !live[ts.initial][v.id]);
  };
  auto same_shape = [&](const VarInfo& a, const VarInfo& b) {
    return a.type == b.type && a.lo == b.lo && a.hi == b.hi &&
           a.has_init == b.has_init && (!a.has_init || a.init == b.init) &&
           a.semantic_init == b.semantic_init && a.decl_lo == b.decl_lo &&
           a.decl_hi == b.decl_hi;
  };

  // interfere[a][b]: a write to one while the other is live-out (or a
  // parallel write to both) — the pair cannot share a slot.
  std::vector<std::vector<bool>> interfere(n, std::vector<bool>(n, false));
  for (const Transition& t : ts.transitions) {
    const std::vector<bool>& out = live[t.to];
    for (const Update& u : t.updates) {
      for (std::size_t w = 0; w < n; ++w)
        if (w != u.var && out[w])
          interfere[u.var][w] = interfere[w][u.var] = true;
      for (const Update& u2 : t.updates)
        if (u2.var != u.var)
          interfere[u.var][u2.var] = interfere[u2.var][u.var] = true;
    }
  }

  // Greedy coalescing: fold each variable into the first compatible class
  // none of whose members it interferes with.
  std::vector<VarId> target(n);
  std::vector<std::vector<VarId>> members(n);
  for (std::size_t v = 0; v < n; ++v) {
    target[v] = static_cast<VarId>(v);
    members[v] = {static_cast<VarId>(v)};
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (!mergeable(ts.vars[v])) continue;
    for (std::size_t rep = 0; rep < v; ++rep) {
      if (target[rep] != rep || !mergeable(ts.vars[rep]) ||
          !same_shape(ts.vars[rep], ts.vars[v]))
        continue;
      bool clash = false;
      for (VarId m : members[rep]) clash |= interfere[m][v];
      if (clash) continue;
      target[v] = static_cast<VarId>(rep);
      members[rep].push_back(static_cast<VarId>(v));
      ++details;
      break;
    }
  }

  bool any_merge = false;
  for (std::size_t v = 0; v < n; ++v) any_merge |= target[v] != v;
  if (any_merge) {
    for (Transition& t : ts.transitions) {
      for (std::size_t v = 0; v < n; ++v) {
        if (target[v] == v) continue;
        if (t.guard) rename_var_in_expr(*t.guard, static_cast<VarId>(v),
                                        target[v]);
        for (Update& u : t.updates) {
          rename_var_in_expr(*u.value, static_cast<VarId>(v), target[v]);
          if (u.var == v) u.var = target[v];
        }
      }
    }
    std::vector<bool> keep2(n, true);
    for (std::size_t v = 0; v < n; ++v) keep2[v] = target[v] == v;
    const std::vector<VarId> shrink = remove_vars(ts, keep2);
    // A merged variable maps to its representative's new slot.
    std::vector<VarId> step(n, kNoVar);
    for (std::size_t v = 0; v < n; ++v) step[v] = shrink[target[v]];
    compose_map(var_map, step);
  }
  return details;
}

// ---------------------------------------------------- DeadVariableElim

/// Removes variables whose values never (transitively) flow into any
/// guard, along with every update that computes them. This is the paper's
/// "variables that do not influence control flow" elimination; it shrinks
/// both the state vector and the work per transition.
std::size_t dead_variable_elim(TransitionSystem& ts,
                               std::vector<VarId>& var_map) {
  std::vector<bool> needed(ts.vars.size(), false);
  for (const Transition& t : ts.transitions) {
    std::vector<VarId> guard_vars;
    collect_expr_vars(t.guard.get(), guard_vars);
    for (VarId v : guard_vars) needed[v] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Transition& t : ts.transitions) {
      for (const Update& u : t.updates) {
        if (!needed[u.var]) continue;
        std::vector<VarId> rhs;
        u.value->collect_vars(rhs);
        for (VarId v : rhs) {
          if (!needed[v]) {
            needed[v] = true;
            changed = true;
          }
        }
      }
    }
  }

  std::size_t details = 0;
  for (Transition& t : ts.transitions) {
    const std::size_t before = t.updates.size();
    std::erase_if(t.updates,
                  [&](const Update& u) { return !needed[u.var]; });
    details += before - t.updates.size();
  }
  std::vector<bool> keep(ts.vars.size(), false);
  for (const VarInfo& v : ts.vars) keep[v.id] = needed[v.id] || v.is_input;
  for (bool k : keep) details += k ? 0 : 1;
  compose_map(var_map, remove_vars(ts, keep));
  return details;
}

// -------------------------------------------------------- VariableInit

/// Pins uninitialised variables to their C-semantic initial value (Section
/// 3.2.5), shrinking the reachable set D_R. Only variables that are dead
/// at the initial location are pinned: their free initial value is
/// unobservable, so fixing it cannot change any behaviour — a variable
/// read before its first write keeps the model checker's free choice.
std::size_t variable_init(TransitionSystem& ts) {
  const auto live = compute_liveness(ts);
  std::size_t pinned = 0;
  for (VarInfo& v : ts.vars) {
    if (v.is_input || v.has_init || live[ts.initial][v.id]) continue;
    const std::int64_t init = minic::wrap_to_type(v.semantic_init, v.type);
    if (init < v.lo || init > v.hi) continue;
    v.has_init = true;
    v.init = init;
    ++pinned;
  }
  return pinned;
}

// ------------------------------------------------------- RangeAnalysis

/// Saturating interval arithmetic over int64.
struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  bool operator==(const Interval&) const = default;
  [[nodiscard]] Interval join(const Interval& o) const {
    return {std::min(lo, o.lo), std::max(hi, o.hi)};
  }
};

std::int64_t sat64(__int128 v) {
  if (v > INT64_MAX) return INT64_MAX;
  if (v < INT64_MIN) return INT64_MIN;
  return static_cast<std::int64_t>(v);
}

Interval type_interval(Type t) {
  return {minic::type_min(t), minic::type_max(t)};
}

/// The interval of wrap_to_type over `i`: identity when `i` fits the
/// type's representation, the full type range otherwise.
Interval wrap_interval(const Interval& i, Type t) {
  const Interval tr = type_interval(t);
  if (i.lo >= tr.lo && i.hi <= tr.hi) return i;
  return tr;
}

/// Over-approximates the value set of `e` given per-variable intervals.
/// Mirrors eval_texpr: operands wrap to the arithmetic type, results wrap
/// to the node type; anything not modelled precisely falls back to the
/// node type's full range (always sound).
Interval eval_interval(const TExpr& e, const std::vector<Interval>& env) {
  using minic::BinOp;
  using minic::UnOp;
  switch (e.kind) {
    case TExprKind::Const:
      return {e.value, e.value};
    case TExprKind::Var:
      return wrap_interval(env[e.var], e.type);
    case TExprKind::Unary: {
      const Interval a = eval_interval(*e.args[0], env);
      switch (e.un_op) {
        case UnOp::Plus:
          return wrap_interval(a, e.type);
        case UnOp::Neg:
          return wrap_interval({sat64(-static_cast<__int128>(a.hi)),
                                sat64(-static_cast<__int128>(a.lo))},
                               e.type);
        case UnOp::BitNot:
          return wrap_interval({sat64(-1 - static_cast<__int128>(a.hi)),
                                sat64(-1 - static_cast<__int128>(a.lo))},
                               e.type);
        case UnOp::LogicalNot:
          if (a.lo > 0 || a.hi < 0) return {0, 0};
          if (a.lo == 0 && a.hi == 0) return {1, 1};
          return {0, 1};
      }
      break;
    }
    case TExprKind::Binary: {
      if (minic::binop_is_boolean(e.bin_op)) return {0, 1};
      const Type ot =
          minic::arith_result(e.args[0]->type, e.args[1]->type);
      const Interval a =
          wrap_interval(eval_interval(*e.args[0], env), ot);
      const Interval b =
          wrap_interval(eval_interval(*e.args[1], env), ot);
      Interval r = type_interval(ot);
      switch (e.bin_op) {
        case BinOp::Add:
          r = {sat64(static_cast<__int128>(a.lo) + b.lo),
               sat64(static_cast<__int128>(a.hi) + b.hi)};
          break;
        case BinOp::Sub:
          r = {sat64(static_cast<__int128>(a.lo) - b.hi),
               sat64(static_cast<__int128>(a.hi) - b.lo)};
          break;
        case BinOp::Mul: {
          const __int128 p[] = {static_cast<__int128>(a.lo) * b.lo,
                                static_cast<__int128>(a.lo) * b.hi,
                                static_cast<__int128>(a.hi) * b.lo,
                                static_cast<__int128>(a.hi) * b.hi};
          r = {sat64(std::min({p[0], p[1], p[2], p[3]})),
               sat64(std::max({p[0], p[1], p[2], p[3]}))};
          break;
        }
        case BinOp::BitAnd:
          if (a.lo >= 0 && b.lo >= 0) r = {0, std::min(a.hi, b.hi)};
          break;
        case BinOp::Shr:
          if (a.lo >= 0) r = {0, a.hi};
          break;
        default:
          break;  // Div/Rem/Shl/BitOr/BitXor: full operand-type range
      }
      return wrap_interval(r, e.type);
    }
    case TExprKind::Cond: {
      const Interval t =
          wrap_interval(eval_interval(*e.args[1], env), e.type);
      const Interval f =
          wrap_interval(eval_interval(*e.args[2], env), e.type);
      return t.join(f);
    }
  }
  return type_interval(e.type);
}

/// Unwraps identity conversions: a Plus node whose operand's interval
/// already fits the node type converts nothing, so guard information
/// about the node applies to the operand unchanged.
const TExpr* peel_identity(const TExpr* e, const std::vector<Interval>& env) {
  while (e->kind == TExprKind::Unary && e->un_op == minic::UnOp::Plus) {
    const Interval inner = eval_interval(*e->args[0], env);
    const Interval tr = type_interval(e->type);
    if (inner.lo < tr.lo || inner.hi > tr.hi) break;
    e = e->args[0].get();
  }
  return e;
}

/// The value of a variable-free expression, when it folds to a point.
std::optional<std::int64_t> const_value(const TExpr& e,
                                        const std::vector<Interval>& env) {
  std::vector<VarId> vars;
  e.collect_vars(vars);
  if (!vars.empty()) return std::nullopt;
  const Interval i = eval_interval(e, env);
  if (i.lo != i.hi) return std::nullopt;
  return i.lo;
}

/// Meets env[var_node.var] with [lo, hi]. Sound only while the read is the
/// identity on the stored interval (no wrap on the way to the comparison),
/// and only when the stored interval also fits `must_fit` — the range of
/// the type the comparison actually happens at. Returns false when the
/// meet is empty: the guard cannot hold in this environment.
bool meet_var(const TExpr& var_node, std::vector<Interval>& env,
              std::int64_t lo, std::int64_t hi, const Interval& must_fit) {
  const Interval cur = env[var_node.var];
  const Interval tr = type_interval(var_node.type);
  if (cur.lo < tr.lo || cur.hi > tr.hi) return true;       // read wraps
  if (cur.lo < must_fit.lo || cur.hi > must_fit.hi) return true;
  const Interval met{std::max(cur.lo, lo), std::min(cur.hi, hi)};
  if (met.lo > met.hi) return false;
  env[var_node.var] = met;
  return true;
}

/// Refines the environment along a `var cmp const` (either side) guard
/// edge. Unhandled shapes refine nothing and stay sound.
bool refine_cmp(const TExpr& e, std::vector<Interval>& env, bool truth) {
  using minic::BinOp;
  BinOp op = e.bin_op;
  const TExpr* a = peel_identity(e.args[0].get(), env);
  const TExpr* b = peel_identity(e.args[1].get(), env);
  if (a->kind != TExprKind::Var) {
    std::swap(a, b);
    switch (op) {
      case BinOp::Lt: op = BinOp::Gt; break;
      case BinOp::Le: op = BinOp::Ge; break;
      case BinOp::Gt: op = BinOp::Lt; break;
      case BinOp::Ge: op = BinOp::Le; break;
      default: break;  // Eq / Ne are symmetric
    }
  }
  if (a->kind != TExprKind::Var) return true;
  const std::optional<std::int64_t> cv = const_value(*b, env);
  if (!cv) return true;
  const std::int64_t c = *cv;
  // The comparison happens at the operands' common arithmetic type; both
  // sides must reach it without wrapping for interval talk to apply.
  const Type ot = minic::arith_result(e.args[0]->type, e.args[1]->type);
  const Interval otr = type_interval(ot);
  if (c < otr.lo || c > otr.hi) return true;
  if (!truth) {
    switch (op) {
      case BinOp::Lt: op = BinOp::Ge; break;
      case BinOp::Le: op = BinOp::Gt; break;
      case BinOp::Gt: op = BinOp::Le; break;
      case BinOp::Ge: op = BinOp::Lt; break;
      case BinOp::Eq: op = BinOp::Ne; break;
      case BinOp::Ne: op = BinOp::Eq; break;
      default: return true;
    }
  }
  switch (op) {
    case BinOp::Lt:
      if (c == INT64_MIN) return false;
      return meet_var(*a, env, INT64_MIN, c - 1, otr);
    case BinOp::Le:
      return meet_var(*a, env, INT64_MIN, c, otr);
    case BinOp::Gt:
      if (c == INT64_MAX) return false;
      return meet_var(*a, env, c + 1, INT64_MAX, otr);
    case BinOp::Ge:
      return meet_var(*a, env, c, INT64_MAX, otr);
    case BinOp::Eq:
      return meet_var(*a, env, c, c, otr);
    case BinOp::Ne: {
      const Interval cur = env[a->var];
      const Interval tr = type_interval(a->type);
      if (cur.lo < tr.lo || cur.hi > tr.hi ||
          cur.lo < otr.lo || cur.hi > otr.hi)
        return true;
      if (cur.lo == c && cur.hi == c) return false;
      if (cur.lo == c) env[a->var].lo = c + 1;
      else if (cur.hi == c) env[a->var].hi = c - 1;
      return true;
    }
    default:
      return true;
  }
}

/// Branch refinement (guard edges constrain intervals): meets `env` with
/// what `g`'s truth value implies. Returns false when the guard is
/// infeasible from this environment — the edge never fires and must not
/// propagate. Conservative: unrecognised shapes refine nothing.
bool refine_by_guard(const TExpr& g, std::vector<Interval>& env,
                     bool truth) {
  using minic::BinOp;
  using minic::UnOp;
  const TExpr* e = peel_identity(&g, env);
  switch (e->kind) {
    case TExprKind::Const:
      return (e->value != 0) == truth;
    case TExprKind::Var: {
      const Interval cur = env[e->var];
      const Interval tr = type_interval(e->type);
      if (cur.lo < tr.lo || cur.hi > tr.hi) return true;   // read wraps
      if (!truth) {
        const Interval met{std::max<std::int64_t>(cur.lo, 0),
                           std::min<std::int64_t>(cur.hi, 0)};
        if (met.lo > met.hi) return false;
        env[e->var] = met;
        return true;
      }
      if (cur.lo == 0 && cur.hi == 0) return false;
      if (cur.lo == 0) env[e->var].lo = 1;
      else if (cur.hi == 0) env[e->var].hi = -1;
      return true;
    }
    case TExprKind::Unary:
      if (e->un_op == UnOp::LogicalNot)
        return refine_by_guard(*e->args[0], env, !truth);
      return true;
    case TExprKind::Binary:
      if (e->bin_op == BinOp::LogicalAnd && truth)
        return refine_by_guard(*e->args[0], env, true) &&
               refine_by_guard(*e->args[1], env, true);
      if (e->bin_op == BinOp::LogicalOr && !truth)
        return refine_by_guard(*e->args[0], env, false) &&
               refine_by_guard(*e->args[1], env, false);
      switch (e->bin_op) {
        case BinOp::Eq:
        case BinOp::Ne:
        case BinOp::Lt:
        case BinOp::Le:
        case BinOp::Gt:
        case BinOp::Ge:
          return refine_cmp(*e, env, truth);
        default:
          return true;
      }
    case TExprKind::Cond:
      return true;
  }
  return true;
}

/// Guard constants compared against each variable, collected syntactically
/// over every guard: the natural widening ceilings. Loop counters settle
/// against the bound their exit guard compares with, so widening to the
/// nearest guard constant (instead of the full type range) keeps exactly
/// the loop-bound information the plain widening throws away.
std::vector<std::vector<std::int64_t>> guard_thresholds(
    const TransitionSystem& ts) {
  const std::size_t n = ts.vars.size();
  std::vector<std::vector<std::int64_t>> th(n);
  const std::vector<Interval> no_env(n, Interval{0, 0});

  const auto visit = [&](const TExpr& e, const auto& self) -> void {
    using minic::BinOp;
    if (e.kind == TExprKind::Binary) {
      switch (e.bin_op) {
        case BinOp::Eq:
        case BinOp::Ne:
        case BinOp::Lt:
        case BinOp::Le:
        case BinOp::Gt:
        case BinOp::Ge: {
          const TExpr* a = peel_identity(e.args[0].get(), no_env);
          const TExpr* b = peel_identity(e.args[1].get(), no_env);
          if (a->kind != TExprKind::Var) std::swap(a, b);
          if (a->kind == TExprKind::Var) {
            if (const auto c = const_value(*b, no_env)) {
              if (*c > INT64_MIN) th[a->var].push_back(*c - 1);
              th[a->var].push_back(*c);
              if (*c < INT64_MAX) th[a->var].push_back(*c + 1);
            }
          }
          break;
        }
        default:
          break;
      }
    }
    for (const TExprPtr& arg : e.args) self(*arg, self);
  };
  for (const Transition& t : ts.transitions)
    if (t.guard) visit(*t.guard, visit);

  for (std::size_t v = 0; v < n; ++v) {
    th[v].push_back(0);
    th[v].push_back(ts.vars[v].decl_lo);
    th[v].push_back(ts.vars[v].decl_hi);
    std::sort(th[v].begin(), th[v].end());
    th[v].erase(std::unique(th[v].begin(), th[v].end()), th[v].end());
  }
  return th;
}

/// Widens `next` to the nearest enclosing threshold pair (falling back to
/// the full type range). Always a superset of `next`, so it is a sound
/// widening target; the finite threshold set bounds the number of stages
/// a still-growing cell can pass through.
Interval widen_to_threshold(const Interval& next,
                            const std::vector<std::int64_t>& th, Type type) {
  const Interval tr = type_interval(type);
  Interval w = tr;
  for (const std::int64_t t : th)
    if (t <= next.lo && t > w.lo) w.lo = t;
  for (auto it = th.rbegin(); it != th.rend(); ++it)
    if (*it >= next.hi && *it < w.hi) w.hi = *it;
  w.lo = std::max(w.lo, tr.lo);
  w.hi = std::min(w.hi, tr.hi);
  return w.join(next);
}

/// Narrows [lo, hi] per variable to a flow-sensitive over-approximation of
/// the values it can actually hold: one interval per (location, variable),
/// propagated to a fixpoint (with threshold widening on loops, and guard
/// edges refining the environment they propagate), then tightened by a
/// narrowing iteration, then joined over all reachable locations.
/// Location sensitivity matters — a flow-insensitive join would feed
/// `mode = mode + 1` its own output forever and widen away every
/// accumulator. Fewer representable values -> fewer encoding bits
/// (Section 3.2.4's "1 bit vs 16 bits for boolean expressions").
std::size_t range_analysis(TransitionSystem& ts) {
  const std::size_t n = ts.vars.size();
  std::vector<Interval> init(n);
  for (std::size_t v = 0; v < n; ++v) {
    const VarInfo& info = ts.vars[v];
    if (!info.is_input && info.has_init) {
      init[v] = {info.init, info.init};
    } else {
      // Free initial value. The declared C range is a sound clamp even for
      // a pessimistically widened encoding: every out-of-range bit pattern
      // reads (wraps) as some in-range value, so restricting the free
      // choice to canonical representatives preserves all behaviours.
      const std::int64_t lo = std::max(info.lo, info.decl_lo);
      const std::int64_t hi = std::min(info.hi, info.decl_hi);
      init[v] = lo <= hi ? Interval{lo, hi} : Interval{info.lo, info.hi};
    }
  }

  std::vector<std::vector<Interval>> env(ts.num_locs,
                                         std::vector<Interval>(n));
  std::vector<bool> reached(ts.num_locs, false);
  env[ts.initial] = init;
  reached[ts.initial] = true;

  // One transfer: refine the source environment by the guard (an
  // infeasible guard means the edge never fires from this environment),
  // then apply the updates on the refined values.
  const auto transfer = [&](const Transition& t,
                            std::vector<Interval>& out) -> bool {
    out = env[t.from];
    if (t.guard && !refine_by_guard(*t.guard, out, true)) return false;
    const std::vector<Interval> cur = out;
    for (const Update& u : t.updates)
      out[u.var] = wrap_interval(eval_interval(*u.value, cur),
                                 ts.vars[u.var].type);
    return true;
  };

  // Chaotic iteration; a (location, variable) cell still growing after its
  // grace rounds widens to the nearest guard-constant threshold, and past
  // the last threshold to the sound ceiling — the full type range (updates
  // wrap to the type, so every stored value lies inside it; the old
  // [lo, hi] domain does NOT bound stored values and must not be used, or
  // downstream reads would narrow on an under-approximation).
  const auto thresholds = guard_thresholds(ts);
  std::size_t total_thresholds = 0;
  for (const auto& th : thresholds) total_thresholds += th.size();
  std::vector<int> grew(ts.num_locs * n, 0);
  const int max_rounds = 64 + 8 * static_cast<int>(ts.num_locs) +
                         8 * static_cast<int>(total_thresholds);
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < max_rounds) {
    changed = false;
    for (const Transition& t : ts.transitions) {
      if (!reached[t.from]) continue;
      std::vector<Interval> out;
      if (!transfer(t, out)) continue;
      if (!reached[t.to]) {
        env[t.to] = std::move(out);
        reached[t.to] = true;
        changed = true;
        continue;
      }
      for (std::size_t v = 0; v < n; ++v) {
        const Interval next = env[t.to][v].join(out[v]);
        if (next == env[t.to][v]) continue;
        changed = true;
        env[t.to][v] =
            ++grew[t.to * n + v] > 8
                ? widen_to_threshold(next, thresholds[v],
                                     ts.vars[v].type)
                : next;
      }
    }
  }
  // No fixpoint within the round budget: anything computed so far may
  // under-approximate — narrowing on it would be unsound, so do nothing.
  if (changed) return 0;

  // Narrowing: recompute every location from its predecessors and meet
  // with the fixpoint. Downward iteration from a post-fixpoint stays above
  // the exact invariant for any number of steps, so a fixed two rounds
  // are sound and claw back what a widening overshoot cost. A location no
  // recomputation feeds (or whose meet empties) is unreachable.
  for (int round = 0; round < 2; ++round) {
    std::vector<std::vector<Interval>> fresh(ts.num_locs,
                                             std::vector<Interval>(n));
    std::vector<bool> has(ts.num_locs, false);
    fresh[ts.initial] = init;
    has[ts.initial] = true;
    for (const Transition& t : ts.transitions) {
      if (!reached[t.from]) continue;
      std::vector<Interval> out;
      if (!transfer(t, out)) continue;
      if (!has[t.to]) {
        fresh[t.to] = std::move(out);
        has[t.to] = true;
      } else {
        for (std::size_t v = 0; v < n; ++v)
          fresh[t.to][v] = fresh[t.to][v].join(out[v]);
      }
    }
    for (Loc l = 0; l < ts.num_locs; ++l) {
      if (!reached[l]) continue;
      if (!has[l]) {
        reached[l] = false;
        continue;
      }
      bool empty = false;
      for (std::size_t v = 0; v < n; ++v) {
        env[l][v].lo = std::max(env[l][v].lo, fresh[l][v].lo);
        env[l][v].hi = std::min(env[l][v].hi, fresh[l][v].hi);
        empty |= env[l][v].lo > env[l][v].hi;
      }
      if (empty) reached[l] = false;
    }
  }

  std::size_t narrowed = 0;
  for (std::size_t v = 0; v < n; ++v) {
    VarInfo& info = ts.vars[v];
    Interval all = init[v];
    for (Loc l = 0; l < ts.num_locs; ++l)
      if (reached[l]) all = all.join(env[l][v]);
    // Clamp into the old domain: the encoding must never widen, and values
    // escaping the declared domain were already truncated by the baseline
    // encoding.
    const std::int64_t lo = std::max(info.lo, all.lo);
    const std::int64_t hi = std::min(info.hi, all.hi);
    if (lo > hi || (lo == info.lo && hi == info.hi)) continue;
    info.lo = lo;
    info.hi = hi;
    ++narrowed;
  }
  return narrowed;
}

// ------------------------------------------------------ StatementConcat

/// Merges transition chains through single-entry locations (Section
/// 3.2.3): an unguarded statement folds forward into every successor
/// transition, and a lone unguarded statement folds backward into its
/// guarded predecessor. Decision transitions keep their origin, so forced
/// -choice BMC queries and decision traces are unaffected; two decisions
/// never merge. Update-carrying merges into decision fan-outs are taken
/// even in cyclic systems: the driver recomputes the required unroll depth
/// from the optimised system, so fewer locations per loop iteration now
/// shorten the unroll there too.
std::size_t statement_concat(TransitionSystem& ts) {
  std::size_t merges = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    const auto in = in_index(ts);
    std::vector<std::vector<std::size_t>> out(ts.num_locs);
    for (std::size_t i = 0; i < ts.transitions.size(); ++i)
      out[ts.transitions[i].from].push_back(i);

    for (Loc l = 0; l < ts.num_locs && !changed; ++l) {
      if (l == ts.initial || l == ts.final) continue;
      if (in[l].size() != 1 || out[l].empty()) continue;
      const std::size_t ai = in[l][0];
      const Transition& a = ts.transitions[ai];
      if (a.from == l) continue;

      // Forward merge needs A unguarded (the composed transitions must
      // fire exactly when the successors fired); backward merge of a
      // guarded/decision A needs a single unguarded successor B (B always
      // fired after A, so guard and firing pattern are exactly A's).
      const bool a_plain = !a.is_decision() && a.guard == nullptr;
      bool b_all_ok = true;
      if (!a_plain) {
        b_all_ok = out[l].size() == 1;
        if (b_all_ok) {
          const Transition& b = ts.transitions[out[l][0]];
          b_all_ok = !b.is_decision() && b.guard == nullptr && b.to != l;
        }
      }
      if (!b_all_ok) continue;

      std::map<VarId, const Update*> by;
      for (const Update& u : a.updates) by[u.var] = &u;

      // Compose A;B for every successor B, bailing out on oversize trees.
      std::vector<Transition> composed;
      bool fits = true;
      for (const std::size_t bi : out[l]) {
        const Transition& b = ts.transitions[bi];
        if (!a_plain && (b.is_decision() || b.guard != nullptr)) {
          fits = false;
          break;
        }
        Transition m;
        m.from = a.from;
        m.to = b.to;
        if (!a_plain) {
          m.guard = a.guard ? a.guard->clone() : nullptr;
          m.origin_block = a.origin_block;
          m.origin_succ = a.origin_succ;
        } else {
          m.guard = b.guard ? subst_parallel(*b.guard, ts, by) : nullptr;
          m.origin_block = b.origin_block;
          m.origin_succ = b.origin_succ;
        }
        if (m.guard && m.guard->size() > kMaxExprSize) {
          fits = false;
          break;
        }
        std::vector<bool> overwritten(ts.vars.size(), false);
        for (const Update& u : b.updates) {
          Update nu;
          nu.var = u.var;
          nu.value = subst_parallel(*u.value, ts, by);
          if (nu.value->size() > kMaxExprSize) {
            fits = false;
            break;
          }
          overwritten[u.var] = true;
          m.updates.push_back(std::move(nu));
        }
        if (!fits) break;
        for (const Update& u : a.updates)
          if (!overwritten[u.var])
            m.updates.push_back(Update{u.var, u.value->clone()});
        composed.push_back(std::move(m));
      }
      if (!fits) continue;

      // Splice: each B slot takes its composed transition, A disappears.
      std::vector<Transition> next;
      next.reserve(ts.transitions.size() - 1);
      std::size_t b_seen = 0;
      for (std::size_t i = 0; i < ts.transitions.size(); ++i) {
        if (i == ai) continue;
        if (ts.transitions[i].from == l)
          next.push_back(std::move(composed[b_seen++]));
        else
          next.push_back(std::move(ts.transitions[i]));
      }
      ts.transitions = std::move(next);
      renumber_transition_ids(ts);
      ++merges;
      changed = true;
    }
  }
  compact_locations(ts);
  return merges;
}

}  // namespace

// -------------------------------------------------------------- plumbing

std::string pass_name(Pass p) {
  switch (p) {
    case Pass::ReverseCse: return "reverse-cse";
    case Pass::LiveVariables: return "live-variables";
    case Pass::StatementConcat: return "statement-concat";
    case Pass::RangeAnalysis: return "range-analysis";
    case Pass::VariableInit: return "variable-init";
    case Pass::DeadVariableElim: return "dead-variable-elim";
  }
  return "?";
}

std::optional<Pass> parse_pass(std::string_view name) {
  for (const Pass p :
       {Pass::ReverseCse, Pass::LiveVariables, Pass::StatementConcat,
        Pass::RangeAnalysis, Pass::VariableInit, Pass::DeadVariableElim})
    if (pass_name(p) == name) return p;
  return std::nullopt;
}

std::vector<Pass> all_passes() {
  return {Pass::ReverseCse,   Pass::DeadVariableElim, Pass::LiveVariables,
          Pass::VariableInit, Pass::RangeAnalysis,    Pass::StatementConcat};
}

std::vector<VarId> remove_vars(TransitionSystem& ts,
                               const std::vector<bool>& keep) {
  assert(keep.size() == ts.vars.size());
  std::vector<VarId> map(ts.vars.size(), kNoVar);
  VarId next = 0;
  for (std::size_t v = 0; v < ts.vars.size(); ++v)
    if (keep[v]) map[v] = next++;

#ifndef NDEBUG
  for (const Transition& t : ts.transitions) {
    for (VarId v : transition_reads(t))
      assert(keep[v] && "removed variable still read");
    for (const Update& u : t.updates)
      assert(keep[u.var] && "removed variable still written");
  }
#endif

  std::vector<VarInfo> vars;
  vars.reserve(next);
  for (std::size_t v = 0; v < ts.vars.size(); ++v) {
    if (!keep[v]) continue;
    VarInfo info = std::move(ts.vars[v]);
    info.id = map[v];
    vars.push_back(std::move(info));
  }
  ts.vars = std::move(vars);

  struct Remapper {
    const std::vector<VarId>& map;
    void walk(TExpr& e) const {
      if (e.kind == TExprKind::Var) e.var = map[e.var];
      for (const TExprPtr& a : e.args) walk(*a);
    }
  } remap{map};
  for (Transition& t : ts.transitions) {
    if (t.guard) remap.walk(*t.guard);
    for (Update& u : t.updates) {
      u.var = map[u.var];
      remap.walk(*u.value);
    }
  }
  return map;
}

void compact_locations(TransitionSystem& ts) {
  std::vector<bool> used(ts.num_locs, false);
  used[ts.initial] = true;
  used[ts.final] = true;
  for (const Transition& t : ts.transitions) {
    used[t.from] = true;
    used[t.to] = true;
  }
  std::vector<Loc> map(ts.num_locs, tsys::kNoLoc);
  Loc next = 0;
  for (Loc l = 0; l < ts.num_locs; ++l)
    if (used[l]) map[l] = next++;
  for (Transition& t : ts.transitions) {
    t.from = map[t.from];
    t.to = map[t.to];
  }
  ts.initial = map[ts.initial];
  ts.final = map[ts.final];
  ts.num_locs = next;
}

namespace {

PassReport apply_pass(TransitionSystem& ts, Pass pass,
                      std::vector<VarId>& var_map) {
  PassReport r;
  r.pass = pass;
  r.vars_before = ts.vars.size();
  r.data_bits_before = ts.data_bits();
  r.transitions_before = ts.transitions.size();
  switch (pass) {
    case Pass::ReverseCse: r.details = reverse_cse(ts); break;
    case Pass::LiveVariables:
      r.details = live_variables(ts, var_map);
      break;
    case Pass::StatementConcat: r.details = statement_concat(ts); break;
    case Pass::RangeAnalysis: r.details = range_analysis(ts); break;
    case Pass::VariableInit: r.details = variable_init(ts); break;
    case Pass::DeadVariableElim:
      r.details = dead_variable_elim(ts, var_map);
      break;
  }
  r.vars_after = ts.vars.size();
  r.data_bits_after = ts.data_bits();
  r.transitions_after = ts.transitions.size();
  return r;
}

std::vector<VarId> identity_map(std::size_t n) {
  std::vector<VarId> map(n);
  for (std::size_t v = 0; v < n; ++v) map[v] = static_cast<VarId>(v);
  return map;
}

}  // namespace

PassReport run_pass(TransitionSystem& ts, Pass pass) {
  std::vector<VarId> map = identity_map(ts.vars.size());
  return apply_pass(ts, pass, map);
}

PassReport run_pass_mapped(TransitionSystem& ts, Pass pass,
                           std::vector<VarId>& var_map) {
  return apply_pass(ts, pass, var_map);
}

std::vector<PassReport> run_passes(TransitionSystem& ts,
                                   const std::vector<Pass>& passes) {
  return run_passes_mapped(ts, passes).reports;
}

OptResult run_passes_mapped(TransitionSystem& ts,
                            const std::vector<Pass>& passes) {
  OptResult result;
  result.var_map = identity_map(ts.vars.size());
  for (const Pass p : passes)
    result.reports.push_back(apply_pass(ts, p, result.var_map));
  return result;
}

std::vector<std::pair<cfg::BlockId, std::uint32_t>> run_concrete(
    const TransitionSystem& ts, const std::vector<std::int64_t>& inputs,
    std::uint64_t max_steps) {
  std::vector<std::int64_t> env(ts.vars.size(), 0);
  std::size_t next_input = 0;
  for (const VarInfo& v : ts.vars) {
    if (v.is_input) {
      const std::int64_t raw =
          next_input < inputs.size() ? inputs[next_input++] : 0;
      env[v.id] = minic::wrap_to_type(raw, v.type);
    } else {
      env[v.id] =
          minic::wrap_to_type(v.has_init ? v.init : v.semantic_init, v.type);
    }
  }

  std::vector<std::pair<cfg::BlockId, std::uint32_t>> events;
  const auto out = ts.out_index();
  Loc cur = ts.initial;
  for (std::uint64_t step = 0; cur != ts.final && step < max_steps; ++step) {
    const Transition* taken = nullptr;
    for (const Transition* t : out[cur]) {
      if (!t->guard || tsys::eval_texpr(*t->guard, env) != 0) {
        taken = t;
        break;
      }
    }
    if (taken == nullptr) break;  // stuck (no enabled transition)
    if (taken->is_decision())
      events.emplace_back(taken->origin_block, taken->origin_succ);
    std::vector<std::int64_t> next = env;
    for (const Update& u : taken->updates)
      next[u.var] = minic::wrap_to_type(tsys::eval_texpr(*u.value, env),
                                        ts.vars[u.var].type);
    env = std::move(next);
    cur = taken->to;
  }
  return events;
}

}  // namespace tmg::opt
