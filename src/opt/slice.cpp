#include "opt/slice.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

#include "minic/eval.h"
#include "opt/passes.h"

namespace tmg::opt {
namespace {

using tsys::Loc;
using tsys::Transition;
using tsys::TransitionSystem;
using tsys::Update;
using tsys::VarId;
using tsys::VarInfo;

/// Strongly connected component id per location (iterative Tarjan).
/// Defaulted decisions must take an SCC-leaving successor so no loop can
/// spin on a removed guard.
std::vector<std::uint32_t> scc_ids(const TransitionSystem& ts) {
  const std::size_t n = ts.num_locs;
  std::vector<std::vector<Loc>> out(n);
  for (const Transition& t : ts.transitions) out[t.from].push_back(t.to);
  std::vector<std::uint32_t> index(n, UINT32_MAX);
  std::vector<std::uint32_t> low(n, 0);
  std::vector<std::uint32_t> comp(n, UINT32_MAX);
  std::vector<bool> on_stack(n, false);
  std::vector<Loc> stack;
  std::uint32_t next_index = 0;
  std::uint32_t next_comp = 0;
  struct Frame {
    Loc v;
    std::size_t child;
  };
  for (Loc root = 0; root < n; ++root) {
    if (index[root] != UINT32_MAX) continue;
    std::vector<Frame> frames{{root, 0}};
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child < out[f.v].size()) {
        const Loc w = out[f.v][f.child++];
        if (index[w] == UINT32_MAX) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          while (true) {
            const Loc w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp[w] = next_comp;
            if (w == f.v) break;
          }
          ++next_comp;
        }
        const Loc done = f.v;
        frames.pop_back();
        if (!frames.empty())
          low[frames.back().v] = std::min(low[frames.back().v], low[done]);
      }
    }
  }
  return comp;
}

}  // namespace

SegmentSlice build_slice(const TransitionSystem& full,
                         const std::vector<bool>& keep_decisions) {
  SegmentSlice s;
  const std::size_t n_locs = full.num_locs;

  std::vector<std::vector<std::size_t>> out(n_locs);
  for (std::size_t i = 0; i < full.transitions.size(); ++i)
    out[full.transitions[i].from].push_back(i);

  // Location states: 0 = not a decision fan-out, 1 = kept, 2 = defaulted.
  // Every location's out-transitions share one origin block (translation
  // invariant the passes preserve), so the block-level request maps
  // directly onto locations.
  std::vector<std::uint8_t> state(n_locs, 0);
  for (Loc l = 0; l < n_locs; ++l) {
    if (out[l].empty()) continue;
    const Transition& first = full.transitions[out[l][0]];
    if (!first.is_decision()) continue;
    const cfg::BlockId b = first.origin_block;
    const bool kept = b >= keep_decisions.size() || keep_decisions[b];
    state[l] = kept ? 1 : 2;
  }

  // Pick each defaulted decision's successor: the smallest-index branch
  // that leaves the decision's SCC. A decision with no such branch is
  // re-added to the kept set — defaulting it could trap a run inside the
  // loop forever, and the whole construction leans on every sliced run
  // terminating structurally. Re-adding only grows the kept set, so this
  // converges.
  const std::vector<std::uint32_t> comp = scc_ids(full);
  std::vector<std::size_t> default_of(n_locs, SIZE_MAX);
  bool again = true;
  while (again) {
    again = false;
    for (Loc l = 0; l < n_locs; ++l) {
      if (state[l] != 2) continue;
      std::size_t best = SIZE_MAX;
      for (const std::size_t ti : out[l]) {
        const Transition& t = full.transitions[ti];
        if (comp[t.to] == comp[l]) continue;
        if (best == SIZE_MAX ||
            t.origin_succ < full.transitions[best].origin_succ)
          best = ti;
      }
      if (best == SIZE_MAX) {
        state[l] = 1;
        again = true;
      } else {
        default_of[l] = best;
      }
    }
  }

  // Emit the sliced transitions in the original order: kept locations
  // verbatim, defaulted decisions collapsed to their single successor
  // with the guard removed and the decision marker cleared (the surviving
  // edge fires unconditionally; queries never reference it).
  TransitionSystem ts;
  ts.name = full.name;
  ts.vars = full.vars;
  ts.num_locs = full.num_locs;
  ts.initial = full.initial;
  ts.final = full.final;
  for (std::size_t i = 0; i < full.transitions.size(); ++i) {
    const Transition& t = full.transitions[i];
    if (state[t.from] == 2) {
      if (i != default_of[t.from]) continue;
      Transition d;
      d.from = t.from;
      d.to = t.to;
      d.guard = nullptr;
      d.updates.reserve(t.updates.size());
      for (const Update& u : t.updates) {
        Update nu;
        nu.var = u.var;
        nu.value = u.value->clone();
        d.updates.push_back(std::move(nu));
      }
      d.origin_block = t.origin_block;
      d.origin_succ = UINT32_MAX;
      ts.transitions.push_back(std::move(d));
      ++s.defaulted_decisions;
      continue;
    }
    Transition c;
    c.from = t.from;
    c.to = t.to;
    c.guard = t.guard ? t.guard->clone() : nullptr;
    c.updates.reserve(t.updates.size());
    for (const Update& u : t.updates) {
      Update nu;
      nu.var = u.var;
      nu.value = u.value->clone();
      c.updates.push_back(std::move(nu));
    }
    c.origin_block = t.origin_block;
    c.origin_succ = t.origin_succ;
    ts.transitions.push_back(std::move(c));
  }

  // Defaulting cuts sibling branches, which can strand whole subgraphs:
  // prune everything unreachable from the initial location.
  {
    std::vector<std::vector<std::size_t>> out2(ts.num_locs);
    for (std::size_t i = 0; i < ts.transitions.size(); ++i)
      out2[ts.transitions[i].from].push_back(i);
    std::vector<bool> seen(ts.num_locs, false);
    std::vector<Loc> work{ts.initial};
    seen[ts.initial] = true;
    while (!work.empty()) {
      const Loc l = work.back();
      work.pop_back();
      for (const std::size_t ti : out2[l]) {
        const Loc to = ts.transitions[ti].to;
        if (!seen[to]) {
          seen[to] = true;
          work.push_back(to);
        }
      }
    }
    std::vector<Transition> live;
    live.reserve(ts.transitions.size());
    for (Transition& t : ts.transitions)
      if (seen[t.from]) live.push_back(std::move(t));
    ts.transitions = std::move(live);
  }

  // Needed-variable closure from the surviving guards: a variable matters
  // only if some kept guard reads it, directly or through the updates
  // that feed it. Everything else (including inputs) is dead weight for
  // this query — its updates go too.
  std::vector<bool> needed(ts.vars.size(), false);
  {
    std::vector<VarId> vs;
    for (const Transition& t : ts.transitions)
      if (t.guard) t.guard->collect_vars(vs);
    for (const VarId v : vs) needed[v] = true;
    bool grewset = true;
    while (grewset) {
      grewset = false;
      for (const Transition& t : ts.transitions) {
        for (const Update& u : t.updates) {
          if (!needed[u.var]) continue;
          vs.clear();
          u.value->collect_vars(vs);
          for (const VarId v : vs) {
            if (!needed[v]) {
              needed[v] = true;
              grewset = true;
            }
          }
        }
      }
    }
  }
  for (Transition& t : ts.transitions) {
    std::vector<Update> kept_updates;
    kept_updates.reserve(t.updates.size());
    for (Update& u : t.updates)
      if (needed[u.var]) kept_updates.push_back(std::move(u));
    t.updates = std::move(kept_updates);
  }

  s.dropped_vars =
      static_cast<std::size_t>(std::count(needed.begin(), needed.end(), false));
  s.dropped_transitions = full.transitions.size() - ts.transitions.size();
  s.var_map = remove_vars(ts, needed);
  compact_locations(ts);
  for (std::size_t i = 0; i < ts.transitions.size(); ++i)
    ts.transitions[i].id = static_cast<std::uint32_t>(i);

  s.trivial = s.dropped_vars == 0 && s.dropped_transitions == 0 &&
              s.defaulted_decisions == 0;
  s.fingerprint = ts.to_sal();
  s.ts = std::move(ts);
  return s;
}

std::vector<std::int64_t> expand_witness(
    const TransitionSystem& full, const SegmentSlice& slice,
    const std::vector<std::int64_t>& sliced_witness) {
  std::vector<std::int64_t> out(full.vars.size(), 0);
  for (std::size_t v = 0; v < full.vars.size(); ++v) {
    const VarId sv = slice.var_map[v];
    if (sv != tsys::kNoVar) {
      out[v] = static_cast<std::size_t>(sv) < sliced_witness.size()
                   ? sliced_witness[sv]
                   : 0;
      continue;
    }
    const VarInfo& info = full.vars[v];
    if (!info.is_input && info.has_init) {
      // The encoding pins these; witnesses report the pinned value.
      out[v] = info.init;
      continue;
    }
    // Free variable: the witness minimiser's preference anchor — it could
    // not constrain any kept guard, so the full-system minimisation would
    // have driven it exactly here.
    const std::int64_t lo = info.init_lo();
    const std::int64_t hi = info.init_hi();
    out[v] = lo <= 0 && 0 <= hi ? 0 : lo;
  }
  return out;
}

std::vector<cfg::EdgeRef> replay_decisions(
    const TransitionSystem& ts, const std::vector<std::int64_t>& initial_values,
    std::uint64_t max_steps) {
  std::vector<cfg::EdgeRef> trace;
  std::vector<std::int64_t> env = initial_values;
  env.resize(ts.vars.size(), 0);
  Loc cur = ts.initial;
  const auto out = ts.out_index();
  std::uint64_t steps = 0;
  while (cur != ts.final && steps++ < max_steps) {
    const Transition* taken = nullptr;
    for (const Transition* t : out[cur]) {
      if (!t->guard || tsys::eval_texpr(*t->guard, env) != 0) {
        taken = t;
        break;
      }
    }
    if (!taken) break;
    if (taken->is_decision())
      trace.push_back(cfg::EdgeRef{taken->origin_block, taken->origin_succ});
    std::vector<std::int64_t> next_env = env;
    for (const Update& u : taken->updates)
      next_env[u.var] = minic::wrap_to_type(tsys::eval_texpr(*u.value, env),
                                            ts.vars[u.var].type);
    env = std::move(next_env);
    cur = taken->to;
  }
  // Mirror the BMC session's replay contract: a run that does not finish
  // has no trustworthy trace.
  if (cur != ts.final) trace.clear();
  return trace;
}

}  // namespace tmg::opt
