// Per-segment program slicing (static-analysis round 2). A feasibility
// query about one segment (or one decision edge) only cares about the
// decisions that can influence whether execution reaches it — everything
// else is dead weight in the SAT encoding. Following Béchennec/Cassez
// ("Computation of WCET using Program Slicing and Real-Time
// Model-Checking"), each query gets its own backward slice of the
// transition system:
//
//  * decisions that cannot reach the query's anchor are *defaulted*: the
//    fan-out collapses to one unguarded successor that leaves the
//    decision's SCC (so loops still exit and every sliced run
//    terminates within the full system's unroll depth);
//  * the needed-variable closure from the surviving guards then drops
//    every variable and update that cannot influence any kept decision.
//
// Soundness rests on one reachability lemma: a decision firing before the
// anchor in any run reaches the anchor in the CFG, so it is kept — sliced
// runs and full runs agree decision-for-decision up to the anchor, and a
// query is satisfiable against the slice iff it is against the full
// system. Witnesses minimise to the same preferred values on the kept
// variables (the feasible set is a product of kept choices and free
// dropped choices), so the driver can expand a sliced witness to the full
// system byte-identically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tsys/tsys.h"

namespace tmg::opt {

/// One sliced system plus the bookkeeping the driver needs to route
/// queries at it and translate its answers back.
struct SegmentSlice {
  tsys::TransitionSystem ts;
  /// Full-system VarId -> sliced VarId (kNoVar for dropped variables).
  std::vector<tsys::VarId> var_map;
  /// Content key (the SAL rendering of `ts`): two queries whose slices
  /// render identically may share one warm session.
  std::string fingerprint;
  /// Nothing was dropped — solve against the full system instead.
  bool trivial = false;
  std::size_t dropped_vars = 0;
  std::size_t dropped_transitions = 0;
  std::size_t defaulted_decisions = 0;
};

/// Builds the slice of `full` that keeps exactly the decision fan-outs of
/// the origin blocks marked in `keep_decisions` (indexed by BlockId;
/// blocks beyond its size are kept). Decisions whose every successor
/// stays inside their SCC are re-added (defaulting them could unbound a
/// loop), so the kept set may grow beyond the request — never shrink.
SegmentSlice build_slice(const tsys::TransitionSystem& full,
                         const std::vector<bool>& keep_decisions);

/// Expands a sliced witness (initial values per sliced VarId) to the full
/// system: kept variables copy their sliced value; dropped variables take
/// their pinned init or, when free, the same preference anchor the
/// witness minimiser targets (0 when the initial domain contains it, else
/// the domain's low end). With the product structure above this is
/// byte-identical to minimising against the full system.
std::vector<std::int64_t> expand_witness(
    const tsys::TransitionSystem& full, const SegmentSlice& slice,
    const std::vector<std::int64_t>& sliced_witness);

/// Deterministic replay of `initial_values` (one per VarId) through `ts`,
/// recording the decision edge taken at each fan-out — the full-system
/// decision trace for an expanded witness. Returns an empty vector when
/// the final location is not reached within `max_steps` (mirroring the
/// BMC session's replay contract: no trace rather than a partial one).
std::vector<cfg::EdgeRef> replay_decisions(
    const tsys::TransitionSystem& ts,
    const std::vector<std::int64_t>& initial_values, std::uint64_t max_steps);

}  // namespace tmg::opt
