#include "testgen/interp.h"

#include <cassert>

#include "minic/eval.h"

namespace tmg::testgen {

using cfg::BasicBlock;
using cfg::BlockId;
using cfg::Edge;
using cfg::EdgeKind;
using cfg::TermKind;
using minic::Expr;
using minic::ExprKind;
using minic::Stmt;
using minic::StmtKind;
using minic::Type;

Interpreter::Interpreter(const minic::Program& program,
                         const cfg::FunctionCfg& f)
    : program_(program), f_(f), inputs_(program.inputs_of(*f.fn)) {
  env_.assign(program_.symbols.size(), 0);
}

std::int64_t Interpreter::eval(const Expr& e) {
  switch (e.kind) {
    case ExprKind::IntLit:
      return minic::wrap_to_type(e.int_value, e.type);
    case ExprKind::VarRef:
      return env_[e.sym->id];
    case ExprKind::Unary: {
      const std::int64_t v = eval(e.child(0));
      return minic::eval_unop(e.un_op, v, e.child(0).type, e.type);
    }
    case ExprKind::Binary: {
      const std::int64_t l = eval(e.child(0));
      const std::int64_t r = eval(e.child(1));
      const Type ot = minic::arith_result(e.child(0).type, e.child(1).type);
      return minic::eval_binop(e.bin_op, minic::wrap_to_type(l, ot),
                               minic::wrap_to_type(r, ot), ot, e.type);
    }
    case ExprKind::Cond: {
      const std::int64_t c = eval(e.child(0));
      return minic::wrap_to_type(eval(e.child(c != 0 ? 1 : 2)), e.type);
    }
    case ExprKind::Call:
      // Leaf calls have no data effect; value-returning externs are
      // rejected by the transition-system translator, and here we give
      // them a neutral 0 so traces stay total.
      for (const auto& arg : e.children) (void)eval(*arg);
      return 0;
  }
  return 0;
}

void Interpreter::exec_stmt(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::Assign: {
      std::int64_t rhs = eval(*s.children[0]);
      if (s.assign_op) {
        const std::int64_t cur = env_[s.sym->id];
        const Type rt = s.children[0]->type;
        const Type ot = (*s.assign_op == minic::BinOp::Shl ||
                         *s.assign_op == minic::BinOp::Shr)
                            ? minic::arith_result(s.sym->type, s.sym->type)
                            : minic::arith_result(s.sym->type, rt);
        rhs = minic::eval_binop(*s.assign_op, minic::wrap_to_type(cur, ot),
                                minic::wrap_to_type(rhs, ot), ot, ot);
      }
      env_[s.sym->id] = minic::wrap_to_type(rhs, s.sym->type);
      break;
    }
    case StmtKind::Decl:
      if (!s.children.empty())
        env_[s.sym->id] =
            minic::wrap_to_type(eval(*s.children[0]), s.sym->type);
      break;
    case StmtKind::Expr:
      (void)eval(*s.children[0]);
      break;
    case StmtKind::Return:
      if (!s.children.empty())
        ret_ = minic::wrap_to_type(eval(*s.children[0]),
                                   f_.fn->return_type);
      break;
    default:
      assert(false && "statement kind cannot appear inside a basic block");
  }
}

ExecTrace Interpreter::run(const std::vector<std::int64_t>& inputs,
                           std::uint64_t max_stmts) {
  assert(inputs.size() == inputs_.size());
  // reset environment
  env_.assign(program_.symbols.size(), 0);
  for (const minic::Symbol* g : program_.globals)
    env_[g->id] = minic::wrap_to_type(g->init_value, g->type);
  for (std::size_t i = 0; i < inputs_.size(); ++i)
    env_[inputs_[i]->id] = minic::wrap_to_type(inputs[i], inputs_[i]->type);
  ret_ = 0;

  ExecTrace trace;
  BlockId cur = f_.graph.entry();
  while (true) {
    trace.blocks.push_back(cur);
    if (trace.blocks.size() > max_stmts) return trace;  // runaway empty loop
    const BasicBlock& blk = f_.graph.block(cur);
    for (const Stmt* s : blk.stmts) {
      exec_stmt(*s);
      if (++trace.stmts_executed > max_stmts) return trace;  // not terminated
    }
    if (blk.term == TermKind::Exit) {
      trace.terminated = true;
      trace.return_value = ret_;
      return trace;
    }
    // choose the successor edge
    std::uint32_t chosen = 0;
    if (blk.term == TermKind::Branch) {
      const bool taken = eval(*blk.decision) != 0;
      chosen = UINT32_MAX;
      for (std::uint32_t i = 0; i < blk.succs.size(); ++i) {
        if ((blk.succs[i].kind == EdgeKind::True) == taken &&
            (blk.succs[i].kind == EdgeKind::True ||
             blk.succs[i].kind == EdgeKind::False)) {
          chosen = i;
          break;
        }
      }
      assert(chosen != UINT32_MAX);
      trace.choices.push_back(cfg::EdgeRef{cur, chosen});
    } else if (blk.term == TermKind::Switch) {
      const std::int64_t sel = eval(*blk.decision);
      std::uint32_t default_ix = UINT32_MAX;
      chosen = UINT32_MAX;
      for (std::uint32_t i = 0; i < blk.succs.size(); ++i) {
        if (blk.succs[i].kind == EdgeKind::Case) {
          if (blk.succs[i].case_label == sel) {
            chosen = i;
            break;
          }
        } else if (blk.succs[i].kind == EdgeKind::Default) {
          default_ix = i;
        }
      }
      if (chosen == UINT32_MAX) chosen = default_ix;
      assert(chosen != UINT32_MAX);
      trace.choices.push_back(cfg::EdgeRef{cur, chosen});
    } else {
      // Jump / Return: single successor
      assert(!blk.succs.empty());
      chosen = 0;
    }
    cur = blk.succs[chosen].to;
    if (trace.stmts_executed > max_stmts) return trace;
  }
}

}  // namespace tmg::testgen
