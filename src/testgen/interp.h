// Concrete execution of one mini-C function over its CFG, recording the
// control path taken. This is the reference semantics: the target VM, the
// transition system and the BMC engine are all differentially tested
// against it, and the test-data generators use it to check path coverage.
#pragma once

#include <cstdint>
#include <vector>

#include "cfg/structure.h"
#include "minic/ast.h"

namespace tmg::testgen {

/// The observable result of one run.
struct ExecTrace {
  /// Blocks in execution order (entry..exit inclusive on termination).
  std::vector<cfg::BlockId> blocks;
  /// Decision edges taken, in execution order.
  std::vector<cfg::EdgeRef> choices;
  /// Statements executed.
  std::uint64_t stmts_executed = 0;
  /// False if the step limit was hit (runaway loop).
  bool terminated = false;
  /// Return value (0 for void functions).
  std::int64_t return_value = 0;
};

/// Interprets one function. Construct once, run many times (the genetic
/// algorithm calls run() per candidate input vector).
class Interpreter {
 public:
  Interpreter(const minic::Program& program, const cfg::FunctionCfg& f);

  /// Input values ordered as Program::inputs_of(fn); values are wrapped to
  /// each input's type. Non-input globals start at their initialisers,
  /// locals at 0.
  ExecTrace run(const std::vector<std::int64_t>& inputs,
                std::uint64_t max_stmts = 1 << 20);

  /// Variable value after the last run() (by symbol id).
  [[nodiscard]] std::int64_t value_of(const minic::Symbol& sym) const {
    return env_[sym.id];
  }

  [[nodiscard]] const std::vector<minic::Symbol*>& inputs() const {
    return inputs_;
  }

 private:
  std::int64_t eval(const minic::Expr& e);
  void exec_stmt(const minic::Stmt& s);

  const minic::Program& program_;
  const cfg::FunctionCfg& f_;
  std::vector<minic::Symbol*> inputs_;
  std::vector<std::int64_t> env_;  // by symbol id
  std::int64_t ret_ = 0;
};

}  // namespace tmg::testgen
