// Compute-once concurrent memo table for the analysis engine.
//
// Workers racing for the same key must not duplicate an expensive SAT
// query, and — for the engine's determinism guarantee — must all observe
// the exact value a serial run would compute. OnceCache gives both: the
// first thread to request a key runs the compute function (outside the
// lock), every other thread blocks on a shared_future of the same slot.
// Values must therefore be pure functions of the key; the cache makes the
// *work* single-flight, the purity makes the *result* scheduling-
// independent.
#pragma once

#include <future>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace tmg::engine {

template <typename Key, typename Value>
class OnceCache {
 public:
  /// Returns the value for `key`, running `fn` exactly once across all
  /// threads. `computed` (optional) reports whether this call did the
  /// work — callers use it to attribute wall-clock to the computing
  /// thread only. If `fn` throws, every requester of the key rethrows.
  template <typename Fn>
  Value get_or_compute(const Key& key, Fn&& fn, bool* computed = nullptr) {
    std::promise<Value> promise;
    std::shared_future<Value> future;
    bool mine = false;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      auto [it, inserted] = futures_.try_emplace(key);
      if (inserted) {
        it->second = promise.get_future().share();
        mine = true;
      }
      future = it->second;
    }
    if (mine) {
      try {
        promise.set_value(fn());
      } catch (...) {
        promise.set_exception(std::current_exception());
      }
    }
    if (computed != nullptr) *computed = mine;
    return future.get();
  }

  /// Entries ever requested (for tests / bench counters). Not a snapshot
  /// of completed computations.
  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return futures_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<Key, std::shared_future<Value>> futures_;
};

}  // namespace tmg::engine
