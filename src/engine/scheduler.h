// Parallel analysis engine: a work-scheduling subsystem that fans the
// pipeline's independent per-(file, function, segment, path) BMC
// feasibility checks across a fixed pool of worker threads.
//
// Architecture note. The engine deliberately knows nothing about segments
// or solvers: a job is an opaque callable tagged with the id of the worker
// that runs it. Three design rules make `--jobs N` output byte-identical
// to `--jobs 1`:
//
//  1. Jobs are *independent pure functions* of their inputs. Each worker
//     owns its own solver / unroller state (see the concurrency contracts
//     in sat/solver.h and bmc/bmc.h); the only sharing is read-only
//     (the CFG, the transition system, the options).
//  2. Dispatch is dynamic (a shared frontier, so a slow SAT query does not
//     stall the other workers), but every job writes its result into a
//     pre-allocated slot indexed by job id — *which* worker computes a
//     result never changes the result.
//  3. The caller merges the slots in job-id order after the run returns;
//     aggregate statistics are reductions over that deterministic order.
//
// Two execution shapes are provided: Scheduler::run drains a fixed batch
// of jobs (one file's job graph), and Frontier is the dynamic variant for
// multi-file batches — running jobs may push further jobs, so a file's
// frontend/translation job can overlap another file's BMC jobs on the
// same pool.
//
// Wall-clock numbers (per-worker busy seconds, jobs/sec) are collected in
// SchedulerStats and surfaced by `--stats` / `--bench` only, never in the
// default reports.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

namespace tmg::engine {

/// Monotonic clock reading in seconds (std::chrono::steady_clock). The
/// single wall-clock source for every timing measurement in the engine
/// and driver; differences of two readings are elapsed seconds.
double monotonic_seconds();

/// One independent unit of analysis work. `work` receives the id of the
/// executing worker (0-based, < Scheduler::workers()) so callers can keep
/// per-worker scratch state (a solver arena, a feasibility oracle) without
/// locks: worker w is the only thread that ever touches slot w.
struct AnalysisJob {
  std::function<void(unsigned worker)> work;
  /// Affinity key: jobs sharing a non-negative key profit from running on
  /// the same worker (they reuse that worker's warm per-function state —
  /// a bmc session already holding the function's unrolled formula). The
  /// engine routes each key to a home worker (`key % workers`) but treats
  /// it strictly as a preference: an idle worker always steals, so
  /// affinity never serialises a batch or stalls the pool. -1 = no
  /// preference.
  std::int64_t affinity = -1;
};

/// What one run() did, for bench reporting.
struct SchedulerStats {
  unsigned workers = 0;
  std::size_t jobs = 0;
  /// Wall-clock of the whole run() call.
  double wall_seconds = 0.0;
  /// Jobs executed by each worker (sums to `jobs`).
  std::vector<std::size_t> jobs_per_worker;
  /// Busy seconds per worker (time spent inside job callables).
  std::vector<double> busy_seconds_per_worker;

  [[nodiscard]] double jobs_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(jobs) / wall_seconds : 0.0;
  }
};

/// Fixed-size thread pool executing one batch of jobs per run() call.
/// Construction is cheap: threads are spawned per run() and joined before
/// it returns, so a Scheduler can live on the stack of a pipeline run.
class Scheduler {
 public:
  /// `jobs` = worker count; 0 selects hardware_concurrency().
  explicit Scheduler(unsigned jobs = 0);

  [[nodiscard]] unsigned workers() const { return workers_; }

  /// Executes every job exactly once and returns when all are done.
  /// With one worker (or at most one job) everything runs inline on the
  /// calling thread in job order — the serial baseline; a job exception
  /// then propagates immediately, leaving later jobs unexecuted. With
  /// several workers, the first job exception stops the pool (workers
  /// finish their in-flight job), the threads are joined, and that
  /// exception is rethrown on the calling thread. In both cases a throw
  /// means an unspecified suffix of the batch never ran. If the host
  /// refuses to spawn the full pool, run() degrades to the threads that
  /// did start (SchedulerStats::workers reports the actual count).
  SchedulerStats run(const std::vector<AnalysisJob>& jobs) const;

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned hardware_workers();

 private:
  unsigned workers_ = 1;
};

/// Dynamic work frontier: a single shared job queue that running jobs may
/// extend. This is what lets one multi-file batch span the pool — a
/// per-file "front half" job (frontend, CFG, partition, translation, path
/// enumeration) pushes that file's per-path BMC jobs as soon as they
/// exist, so file K+1's frontend overlaps file K's solving.
///
/// Determinism rules are inherited from the Scheduler contract: jobs are
/// pure functions of their inputs writing to pre-allocated slots, and the
/// caller merges in a queue-independent order (file order, then job id).
/// Dispatch order and worker assignment are explicitly NOT deterministic.
class Frontier {
 public:
  /// `jobs` = worker count; 0 selects hardware_concurrency().
  explicit Frontier(unsigned jobs = 0);

  [[nodiscard]] unsigned workers() const { return workers_; }

  /// Enqueues one job. Thread-safe; callable before run() (seeding) and
  /// from inside running jobs (expansion). Jobs pushed after run() has
  /// returned wait for the next run() call.
  void push(AnalysisJob job);

  /// Drains the frontier: returns when the queue is empty AND no job is
  /// in flight. With one worker, jobs run inline on the calling thread in
  /// FIFO order (pushes from inside a job land behind the already-queued
  /// work). The first job exception stops the drain — queued jobs are
  /// discarded, in-flight jobs finish, the exception is rethrown here.
  SchedulerStats run();

  /// Service mode: hold_open() makes run() park idle workers when the
  /// queue momentarily empties instead of returning — the shape a
  /// long-lived server needs, where a listener thread keeps push()ing
  /// connections into an already-running pool. Call before run().
  void hold_open();

  /// Releases the hold: run() returns once the queue is empty and every
  /// in-flight job has finished. Thread-safe; callable from any thread,
  /// including from inside a running job (the lock is not held while job
  /// callables execute).
  void close();

 private:
  void drain(unsigned worker, SchedulerStats& stats);

  unsigned workers_ = 1;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<AnalysisJob> queue_;
  std::size_t in_flight_ = 0;
  bool held_open_ = false;
  bool failed_ = false;
  std::exception_ptr first_error_;
};

}  // namespace tmg::engine
