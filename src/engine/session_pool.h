// Per-worker cache of expensive per-key state (the pipeline's warm
// feasibility oracles with their bmc::Sessions). Values are NOT shared
// across workers — each worker index owns a private slot map, so values
// need no internal synchronisation (bmc::Session is not thread-safe) and
// a given (worker, key) pair always sees the same instance for its
// lifetime. The caller provides a retirement predicate so slots for
// finished work units are dropped before new ones are built, bounding the
// pool to the keys still in flight per worker.
#pragma once

#include <map>
#include <vector>

namespace tmg::engine {

template <typename Key, typename Value>
class SessionPool {
 public:
  explicit SessionPool(std::size_t workers) : slots_(workers) {}

  [[nodiscard]] std::size_t workers() const { return slots_.size(); }

  /// Returns this worker's value for `key`, building it via `make()` on
  /// first use. Before building anything, drops every other slot whose
  /// key satisfies `retired` (its work unit completed; the warm state can
  /// never be needed again). Only `worker`'s slots are touched — calling
  /// concurrently from distinct workers is safe.
  template <typename Retired, typename Make>
  Value& acquire(std::size_t worker, const Key& key, Retired&& retired,
                 Make&& make) {
    auto& slots = slots_[worker];
    for (auto it = slots.begin(); it != slots.end();) {
      if (it->first != key && retired(it->first))
        it = slots.erase(it);
      else
        ++it;
    }
    auto it = slots.find(key);
    if (it == slots.end()) it = slots.emplace(key, make()).first;
    return it->second;
  }

 private:
  std::vector<std::map<Key, Value>> slots_;
};

}  // namespace tmg::engine
