#include "engine/bench.h"

#include "support/json.h"
#include "support/table.h"

namespace tmg::engine {

namespace {

/// Fixed notation with microsecond resolution.
std::string fmt(double v) { return fmt_double(v, 6); }

}  // namespace

std::size_t BenchReport::total_jobs() const {
  std::size_t n = 0;
  for (const BenchFile& f : files) n += f.analysis_jobs;
  return n;
}

double BenchReport::total_serial_seconds() const {
  double s = 0.0;
  for (const BenchFile& f : files) s += f.serial_seconds;
  return s;
}

double BenchReport::total_parallel_seconds() const {
  double s = 0.0;
  for (const BenchFile& f : files) s += f.parallel_seconds;
  return s;
}

double BenchReport::total_optimised_seconds() const {
  double s = 0.0;
  for (const BenchFile& f : files) s += f.optimised_seconds;
  return s;
}

double BenchReport::speedup() const {
  const double p = total_parallel_seconds();
  return p > 0.0 ? total_serial_seconds() / p : 0.0;
}

double BenchReport::opt_speedup() const {
  const double o = total_optimised_seconds();
  return o > 0.0 ? total_parallel_seconds() / o : 0.0;
}

double BenchReport::batch_speedup() const {
  return batch_seconds > 0.0 ? total_parallel_seconds() / batch_seconds : 0.0;
}

double BenchReport::total_fresh_seconds() const {
  double s = 0.0;
  for (const BenchFile& f : files) s += f.fresh_seconds;
  return s;
}

double BenchReport::total_bmc_seconds() const {
  double s = 0.0;
  for (const BenchFile& f : files) s += f.bmc_seconds;
  return s;
}

double BenchReport::total_bmc_fresh_seconds() const {
  double s = 0.0;
  for (const BenchFile& f : files) s += f.bmc_fresh_seconds;
  return s;
}

double BenchReport::total_noslice_seconds() const {
  double s = 0.0;
  for (const BenchFile& f : files) s += f.noslice_seconds;
  return s;
}

double BenchReport::total_bmc_noslice_seconds() const {
  double s = 0.0;
  for (const BenchFile& f : files) s += f.bmc_noslice_seconds;
  return s;
}

double BenchReport::session_speedup() const {
  const double warm = total_bmc_seconds();
  return warm > 0.0 ? total_bmc_fresh_seconds() / warm : 0.0;
}

double BenchReport::slice_speedup() const {
  const double sliced = total_bmc_seconds();
  return sliced > 0.0 ? total_bmc_noslice_seconds() / sliced : 0.0;
}

double BenchReport::fabric_speedup() const {
  return fabric_seconds > 0.0 ? total_parallel_seconds() / fabric_seconds
                              : 0.0;
}

void BenchReport::render_json(std::ostream& os) const {
  os << "{\"bench\":{\"workers\":" << workers << ",\"repeats\":" << repeats
     << ",\"files\":[";
  bool first = true;
  for (const BenchFile& f : files) {
    if (!first) os << ",";
    first = false;
    os << "{\"path\":" << json_quote(f.path)
       << ",\"analysis_jobs\":" << f.analysis_jobs
       << ",\"workers_used\":" << f.workers_used
       << ",\"serial_seconds\":" << fmt(f.serial_seconds)
       << ",\"parallel_seconds\":" << fmt(f.parallel_seconds)
       << ",\"optimised_seconds\":" << fmt(f.optimised_seconds)
       << ",\"fresh_seconds\":" << fmt(f.fresh_seconds)
       << ",\"noslice_seconds\":" << fmt(f.noslice_seconds)
       << ",\"bmc_seconds\":" << fmt(f.bmc_seconds)
       << ",\"bmc_fresh_seconds\":" << fmt(f.bmc_fresh_seconds)
       << ",\"bmc_noslice_seconds\":" << fmt(f.bmc_noslice_seconds)
       << ",\"speedup\":" << fmt(f.speedup())
       << ",\"opt_speedup\":" << fmt(f.opt_speedup())
       << ",\"session_speedup\":" << fmt(f.session_speedup())
       << ",\"slice_speedup\":" << fmt(f.slice_speedup())
       << ",\"jobs_per_second\":" << fmt(f.jobs_per_second())
       << ",\"solver\":{\"decisions\":" << f.solver_decisions
       << ",\"propagations\":" << f.solver_propagations
       << ",\"conflicts\":" << f.solver_conflicts
       << ",\"restarts\":" << f.solver_restarts << "}"
       << ",\"stages\":{";
    bool first_stage = true;
    for (const BenchStage& s : f.stages) {
      if (!first_stage) os << ",";
      first_stage = false;
      os << json_quote(s.name) << ":" << fmt(s.seconds);
    }
    os << "}}";
  }
  os << "],\"aggregate\":{\"analysis_jobs\":" << total_jobs()
     << ",\"serial_seconds\":" << fmt(total_serial_seconds())
     << ",\"parallel_seconds\":" << fmt(total_parallel_seconds())
     << ",\"optimised_seconds\":" << fmt(total_optimised_seconds())
     << ",\"fresh_seconds\":" << fmt(total_fresh_seconds())
     << ",\"noslice_seconds\":" << fmt(total_noslice_seconds())
     << ",\"bmc_seconds\":" << fmt(total_bmc_seconds())
     << ",\"bmc_fresh_seconds\":" << fmt(total_bmc_fresh_seconds())
     << ",\"bmc_noslice_seconds\":" << fmt(total_bmc_noslice_seconds())
     << ",\"batch_seconds\":" << fmt(batch_seconds)
     << ",\"speedup\":" << fmt(speedup())
     << ",\"opt_speedup\":" << fmt(opt_speedup())
     << ",\"session_speedup\":" << fmt(session_speedup())
     << ",\"slice_speedup\":" << fmt(slice_speedup())
     << ",\"batch_speedup\":" << fmt(batch_speedup());
  // Fabric keys only when measured (--shards N --bench) so the schema of
  // an unsharded bench report is unchanged byte-for-byte.
  if (fabric_seconds > 0.0)
    os << ",\"fabric_seconds\":" << fmt(fabric_seconds)
       << ",\"fabric_pool\":" << fabric_pool
       << ",\"fabric_speedup\":" << fmt(fabric_speedup());
  os << "}";
  if (cache_probed)
    os << ",\"cache\":{\"mode\":" << json_quote(cache_mode)
       << ",\"hits\":" << cache_hits << ",\"misses\":" << cache_misses << "}";
  os << "}}\n";
}

}  // namespace tmg::engine
