#include "engine/scheduler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "support/trace.h"

namespace tmg::engine {

namespace {

trace::Counter& jobs_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::instance().counter("engine.jobs");
  return c;
}

}  // namespace

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Scheduler::Scheduler(unsigned jobs)
    : workers_(jobs > 0 ? jobs : hardware_workers()) {}

unsigned Scheduler::hardware_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

SchedulerStats Scheduler::run(const std::vector<AnalysisJob>& jobs) const {
  SchedulerStats stats;
  stats.jobs = jobs.size();
  const double t_start = monotonic_seconds();

  // A pool larger than the batch would only spawn idle threads.
  const unsigned pool = static_cast<unsigned>(
      std::min<std::size_t>(workers_, std::max<std::size_t>(jobs.size(), 1)));
  stats.workers = pool;
  stats.jobs_per_worker.assign(pool, 0);
  stats.busy_seconds_per_worker.assign(pool, 0.0);

  if (pool <= 1) {
    for (const AnalysisJob& j : jobs) {
      const double t_job = monotonic_seconds();
      {
        trace::TraceSpan span("job", "engine");
        span.arg("worker", std::int64_t{0});
        j.work(0);
      }
      jobs_counter().add();
      stats.busy_seconds_per_worker[0] += (monotonic_seconds() - t_job);
      ++stats.jobs_per_worker[0];
    }
    stats.wall_seconds = monotonic_seconds() - t_start;
    return stats;
  }

  // Route each affinity key to its home worker and spread keyless jobs
  // round-robin; a claim flag per job lets idle workers steal whatever
  // their preferred list did not cover. Affinity is a preference only —
  // the steal pass guarantees every job runs even if its home worker is
  // slow or never started.
  std::vector<std::vector<std::size_t>> preferred(pool);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const std::int64_t a = jobs[i].affinity;
    preferred[a >= 0 ? static_cast<std::size_t>(a) % pool : i % pool]
        .push_back(i);
  }
  std::vector<std::atomic<bool>> claimed(jobs.size());
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto run_one = [&](unsigned worker, std::size_t i) {
    const double t_job = monotonic_seconds();
    try {
      trace::TraceSpan span("job", "engine");
      span.arg("worker", static_cast<std::int64_t>(worker));
      jobs[i].work(worker);
      jobs_counter().add();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
      return false;
    }
    stats.busy_seconds_per_worker[worker] += (monotonic_seconds() - t_job);
    ++stats.jobs_per_worker[worker];
    return true;
  };

  auto drain = [&](unsigned worker) {
    for (const std::size_t i : preferred[worker]) {
      if (failed.load(std::memory_order_relaxed)) return;
      if (!claimed[i].exchange(true, std::memory_order_acq_rel))
        if (!run_one(worker, i)) return;
    }
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (failed.load(std::memory_order_relaxed)) return;
      if (!claimed[i].exchange(true, std::memory_order_acq_rel))
        if (!run_one(worker, i)) return;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(pool - 1);
  try {
    for (unsigned w = 1; w < pool; ++w) threads.emplace_back(drain, w);
  } catch (const std::system_error&) {
    // Thread-limited host (RLIMIT_NPROC, container caps): letting the
    // vector unwind with joinable threads would std::terminate. Proceed
    // with the workers that did start; the calling thread drains the rest.
  }
  drain(0);
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
  const unsigned actual = static_cast<unsigned>(threads.size()) + 1;
  stats.workers = actual;
  stats.jobs_per_worker.resize(actual);
  stats.busy_seconds_per_worker.resize(actual);
  stats.wall_seconds = monotonic_seconds() - t_start;
  return stats;
}

Frontier::Frontier(unsigned jobs)
    : workers_(jobs > 0 ? jobs : Scheduler::hardware_workers()) {}

void Frontier::hold_open() {
  const std::lock_guard<std::mutex> lock(mutex_);
  held_open_ = true;
}

void Frontier::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    held_open_ = false;
  }
  cv_.notify_all();
}

void Frontier::push(AnalysisJob job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
    static trace::Histogram& depth =
        trace::MetricsRegistry::instance().histogram("engine.queue_depth");
    depth.observe(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
}

void Frontier::drain(unsigned worker, SchedulerStats& stats) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_.wait(lock, [&] {
      return !queue_.empty() || (in_flight_ == 0 && !held_open_) || failed_;
    });
    if (failed_ || queue_.empty()) {
      // Either a sibling failed, or nothing is queued and nothing in
      // flight can push more (and no service hold keeps the pool parked):
      // the frontier is drained.
      const bool drained = queue_.empty() && in_flight_ == 0 && !held_open_;
      if (drained) cv_.notify_all();
      if (failed_ || drained) return;
      continue;  // spurious: someone is in flight and may still push
    }
    // Prefer a job homed on this worker (matching affinity key) so one
    // function's queries keep hitting the same worker's warm session
    // instead of rebuilding it elsewhere; otherwise take the oldest job —
    // an idle worker always steals.
    auto it = queue_.begin();
    for (auto q = queue_.begin(); q != queue_.end(); ++q) {
      if (q->affinity >= 0 &&
          q->affinity % static_cast<std::int64_t>(workers_) ==
              static_cast<std::int64_t>(worker)) {
        it = q;
        break;
      }
    }
    AnalysisJob job = std::move(*it);
    queue_.erase(it);
    ++in_flight_;
    lock.unlock();

    const double t_job = monotonic_seconds();
    std::exception_ptr error;
    try {
      trace::TraceSpan span("job", "engine");
      span.arg("worker", static_cast<std::int64_t>(worker));
      job.work(worker);
      jobs_counter().add();
    } catch (...) {
      error = std::current_exception();
    }
    const double busy = monotonic_seconds() - t_job;

    lock.lock();
    --in_flight_;
    if (error) {
      if (!first_error_) first_error_ = error;
      failed_ = true;
      queue_.clear();
      cv_.notify_all();
      return;
    }
    stats.busy_seconds_per_worker[worker] += busy;
    ++stats.jobs_per_worker[worker];
    if (queue_.empty() && in_flight_ == 0 && !held_open_) cv_.notify_all();
  }
}

SchedulerStats Frontier::run() {
  SchedulerStats stats;
  const double t_start = monotonic_seconds();
  bool service = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    failed_ = false;
    first_error_ = nullptr;
    service = held_open_;
  }

  // A held-open single-worker pool must park on the condition variable
  // like the threaded path does (the inline loop below returns the moment
  // the queue empties), so service mode always drains via drain().
  if (workers_ <= 1 && !service) {
    // Serial baseline: inline FIFO drain. Pushes from inside a job extend
    // the same queue; a job exception leaves the remaining queue intact
    // only long enough to clear it (matching the pool's discard rule).
    stats.workers = 1;
    stats.jobs_per_worker.assign(1, 0);
    stats.busy_seconds_per_worker.assign(1, 0.0);
    while (true) {
      AnalysisJob job;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty()) break;
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      const double t_job = monotonic_seconds();
      try {
        trace::TraceSpan span("job", "engine");
        span.arg("worker", std::int64_t{0});
        job.work(0);
        jobs_counter().add();
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex_);
        queue_.clear();
        throw;
      }
      stats.busy_seconds_per_worker[0] += (monotonic_seconds() - t_job);
      ++stats.jobs_per_worker[0];
      ++stats.jobs;
    }
    stats.wall_seconds = monotonic_seconds() - t_start;
    return stats;
  }

  stats.workers = workers_;
  stats.jobs_per_worker.assign(workers_, 0);
  stats.busy_seconds_per_worker.assign(workers_, 0.0);

  std::vector<std::thread> threads;
  threads.reserve(workers_ - 1);
  try {
    for (unsigned w = 1; w < workers_; ++w)
      threads.emplace_back([this, w, &stats] { drain(w, stats); });
  } catch (const std::system_error&) {
    // Thread-limited host: degrade to the workers that did start (see
    // Scheduler::run).
  }
  drain(0, stats);
  for (std::thread& t : threads) t.join();

  if (first_error_) std::rethrow_exception(first_error_);
  const unsigned actual = static_cast<unsigned>(threads.size()) + 1;
  stats.workers = actual;
  stats.jobs_per_worker.resize(actual);
  stats.busy_seconds_per_worker.resize(actual);
  for (const std::size_t n : stats.jobs_per_worker) stats.jobs += n;
  stats.wall_seconds = monotonic_seconds() - t_start;
  return stats;
}

}  // namespace tmg::engine
