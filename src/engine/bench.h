// Self-measurement for the analysis engine: repeated-run benchmark reports
// (`tmg --bench R`) that seed the repo's BENCH_*.json trajectory.
//
// The driver runs each input R times serially (--jobs 1 semantics) and R
// times with the configured worker pool, keeps the best wall-clock of each
// mode, and fills one BenchFile per input. The engine renders the stable
// JSON schema documented in the README; everything here is plain data so
// tests can assert on it without running the clock.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace tmg::engine {

/// Wall-clock of one named pipeline stage (from the best parallel run).
struct BenchStage {
  std::string name;
  double seconds = 0.0;
};

/// Benchmark result for one input file.
struct BenchFile {
  std::string path;
  /// Analysis jobs (per-path BMC checks) executed by one pipeline run.
  std::size_t analysis_jobs = 0;
  /// Best-of-R wall-clock of the whole pipeline: serial (one worker), the
  /// configured pool, and the pool with the Section 3.2 optimisation
  /// passes applied before BMC.
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
  double optimised_seconds = 0.0;
  /// Best-of-R pool run with warm BMC sessions disabled (one throwaway
  /// solver per query) — the baseline the session speedup is against.
  double fresh_seconds = 0.0;
  /// Best-of-R pool run with per-segment slicing disabled (every query
  /// solved against the full transition system) — the baseline the
  /// slice speedup is against.
  double noslice_seconds = 0.0;
  /// BMC-stage seconds of the best pool run (warm sessions) and of the
  /// best fresh run; their ratio isolates the incremental-SAT win from
  /// frontend/CFG/translate time that sessions cannot touch.
  double bmc_seconds = 0.0;
  double bmc_fresh_seconds = 0.0;
  /// BMC-stage seconds of the best unsliced pool run; the ratio against
  /// bmc_seconds isolates the per-segment slicing win.
  double bmc_noslice_seconds = 0.0;
  /// SAT solver effort of the best warm pool run, summed over segments.
  std::uint64_t solver_decisions = 0;
  std::uint64_t solver_propagations = 0;
  std::uint64_t solver_conflicts = 0;
  std::uint64_t solver_restarts = 0;
  std::vector<BenchStage> stages;
  /// Workers the scheduler actually used for this input (the pool clamps
  /// to the job count, so this can be below BenchReport::workers).
  unsigned workers_used = 1;

  [[nodiscard]] double speedup() const {
    return parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  }
  /// Warm-session BMC speedup: fresh-solver BMC seconds over warm.
  [[nodiscard]] double session_speedup() const {
    return bmc_seconds > 0.0 ? bmc_fresh_seconds / bmc_seconds : 0.0;
  }
  /// Slicing BMC speedup: unsliced BMC seconds over sliced.
  [[nodiscard]] double slice_speedup() const {
    return bmc_seconds > 0.0 ? bmc_noslice_seconds / bmc_seconds : 0.0;
  }
  /// Optimisation speedup at the same worker count: unoptimised pool time
  /// over optimised pool time.
  [[nodiscard]] double opt_speedup() const {
    return optimised_seconds > 0.0 ? parallel_seconds / optimised_seconds
                                   : 0.0;
  }
  [[nodiscard]] double jobs_per_second() const {
    return parallel_seconds > 0.0
               ? static_cast<double>(analysis_jobs) / parallel_seconds
               : 0.0;
  }
};

/// The full `--bench` report: per-file rows plus pool-level aggregates.
struct BenchReport {
  /// Configured pool size; per-file `workers_used` reports the clamp.
  unsigned workers = 1;
  unsigned repeats = 1;
  std::vector<BenchFile> files;
  /// Best-of-R wall-clock of analysing ALL files on one global job
  /// frontier (frontends overlap BMC across files) — the number the
  /// per-file parallel_seconds sum is compared against. 0 = unmeasured.
  double batch_seconds = 0.0;
  /// Best-of-R wall-clock of the same files through the sharded worker
  /// fabric (a pool of `fabric_pool` forked workers pulling size-ranked
  /// units off a queue). 0 = unmeasured (only `--shards N --bench`
  /// measures it); the fabric keys are then omitted from the JSON.
  double fabric_seconds = 0.0;
  unsigned fabric_pool = 0;

  [[nodiscard]] std::size_t total_jobs() const;
  [[nodiscard]] double total_serial_seconds() const;
  [[nodiscard]] double total_parallel_seconds() const;
  [[nodiscard]] double total_optimised_seconds() const;
  /// Aggregate speedup over all files (total serial / total parallel).
  [[nodiscard]] double speedup() const;
  /// Aggregate optimisation speedup (total parallel / total optimised).
  [[nodiscard]] double opt_speedup() const;
  /// Frontier speedup: per-file pool runs summed vs one global frontier
  /// run (total parallel / batch).
  [[nodiscard]] double batch_speedup() const;
  [[nodiscard]] double total_fresh_seconds() const;
  [[nodiscard]] double total_noslice_seconds() const;
  [[nodiscard]] double total_bmc_seconds() const;
  [[nodiscard]] double total_bmc_fresh_seconds() const;
  [[nodiscard]] double total_bmc_noslice_seconds() const;
  /// Aggregate warm-session BMC speedup (total fresh BMC / total warm).
  [[nodiscard]] double session_speedup() const;
  /// Aggregate slicing BMC speedup (total unsliced BMC / total sliced).
  [[nodiscard]] double slice_speedup() const;
  /// Fabric speedup: per-file pool runs summed vs the worker-process
  /// fabric wall (total parallel / fabric). 0 when unmeasured.
  [[nodiscard]] double fabric_speedup() const;

  /// Result-cache probe (counts only — bench never serves results from
  /// the cache; it measures real computation). Filled by the driver when
  /// --cache-dir is active.
  bool cache_probed = false;
  std::string cache_mode;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  /// Renders the JSON schema documented in README.md (one object,
  /// trailing newline).
  void render_json(std::ostream& os) const;
};

}  // namespace tmg::engine
