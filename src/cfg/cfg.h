// Control flow graph for one mini-C function.
//
// Construction rule (matters for reproducing the paper's Table 1): every
// branching condition is evaluated in a *decision block* of its own, and no
// empty join blocks are materialised — branch exits are patched directly to
// wherever control continues. Instrumentation-oriented CFG tools use this
// shape because probes bracket decisions; with it, the Figure 1 example
// yields exactly 11 blocks (start, 8 real blocks, end) and the paper's
// instrumentation-point counts follow.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "minic/ast.h"

namespace tmg::cfg {

using BlockId = std::uint32_t;
inline constexpr BlockId kInvalidBlock = UINT32_MAX;

/// Kind of a control edge.
enum class EdgeKind : std::uint8_t {
  Fall,     // unconditional continuation
  True,     // decision true branch
  False,    // decision false branch
  Case,     // switch case (labelled)
  Default,  // switch default
  Return,   // edge from a returning block to the exit block
};

std::string edge_kind_name(EdgeKind k);

struct Edge {
  BlockId to = kInvalidBlock;
  EdgeKind kind = EdgeKind::Fall;
  std::int64_t case_label = 0;  // valid when kind == Case
  /// Loop back edge (to a loop header); orthogonal to `kind` because the
  /// jump back may come from any branch shape. DAG traversals skip these.
  bool back = false;
};

/// What terminates a block.
enum class TermKind : std::uint8_t {
  Jump,    // single successor
  Branch,  // two-way decision on `decision` (True/False edges)
  Switch,  // n-way decision on `decision` (Case/Default edges)
  Return,  // control leaves the function (single Return edge to exit)
  Exit,    // the function exit block (no successors)
};

/// One basic block: straight-line statements, optionally terminated by a
/// decision. Decision blocks carry no other statements by construction.
struct BasicBlock {
  BlockId id = kInvalidBlock;
  /// Straight-line statements (Assign / Decl / Expr / Return).
  std::vector<const minic::Stmt*> stmts;
  TermKind term = TermKind::Jump;
  /// The branch/switch controlling expression (Branch/Switch terminators).
  const minic::Expr* decision = nullptr;
  std::vector<Edge> succs;
  SourceLoc loc;  // location of the first statement / the decision

  [[nodiscard]] bool is_decision() const {
    return term == TermKind::Branch || term == TermKind::Switch;
  }
  [[nodiscard]] bool empty() const {
    return stmts.empty() && decision == nullptr;
  }
};

/// A (block, successor-slot) pair naming one specific control edge.
struct EdgeRef {
  BlockId from = kInvalidBlock;
  std::uint32_t succ_index = 0;

  friend bool operator==(const EdgeRef&, const EdgeRef&) = default;
};

/// The control flow graph. Block 0 is always the entry ("start") block and
/// `exit_block` the unique exit ("end") block; both are empty by
/// construction.
class Cfg {
 public:
  explicit Cfg(std::string function_name)
      : function_name_(std::move(function_name)) {}

  BlockId add_block() {
    blocks_.push_back(BasicBlock{});
    blocks_.back().id = static_cast<BlockId>(blocks_.size() - 1);
    return blocks_.back().id;
  }

  [[nodiscard]] const std::string& function_name() const {
    return function_name_;
  }
  [[nodiscard]] std::size_t size() const { return blocks_.size(); }
  [[nodiscard]] BasicBlock& block(BlockId id) { return blocks_[id]; }
  [[nodiscard]] const BasicBlock& block(BlockId id) const {
    return blocks_[id];
  }
  [[nodiscard]] const std::vector<BasicBlock>& blocks() const {
    return blocks_;
  }

  [[nodiscard]] BlockId entry() const { return 0; }
  [[nodiscard]] BlockId exit_block() const { return exit_; }
  void set_exit(BlockId b) { exit_ = b; }

  [[nodiscard]] const Edge& edge(const EdgeRef& ref) const {
    return blocks_[ref.from].succs[ref.succ_index];
  }

  /// Predecessor lists (computed once after construction).
  [[nodiscard]] const std::vector<std::vector<BlockId>>& preds() const {
    return preds_;
  }
  void finalize();  // computes preds; validates that all edges are patched

  /// Blocks in reverse-post-order over forward (non-Back) edges.
  [[nodiscard]] std::vector<BlockId> topo_order() const;

  /// Blocks reachable from entry via any edge.
  [[nodiscard]] std::vector<bool> reachable() const;

  /// Number of conditional decisions (Branch + Switch blocks).
  [[nodiscard]] std::size_t decision_count() const;

  /// Graphviz rendering for debugging and documentation.
  [[nodiscard]] std::string to_dot() const;

 private:
  std::string function_name_;
  std::vector<BasicBlock> blocks_;
  std::vector<std::vector<BlockId>> preds_;
  BlockId exit_ = kInvalidBlock;
};

}  // namespace tmg::cfg
