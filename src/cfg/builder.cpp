// AST -> CFG lowering. See cfg.h for the block-shape rules that make the
// paper's Table 1 reproducible.
#include <cassert>

#include "cfg/structure.h"

namespace tmg::cfg {

using minic::Stmt;
using minic::StmtKind;

namespace {

class Builder {
 public:
  explicit Builder(const minic::FunctionDef& fn)
      : fn_(fn), out_(std::make_unique<FunctionCfg>(fn)) {}

  std::unique_ptr<FunctionCfg> run() {
    Cfg& g = out_->graph;
    const BlockId start = g.add_block();  // block 0 = entry
    const BlockId end = g.add_block();    // block 1 = exit
    g.set_exit(end);
    g.block(end).term = TermKind::Exit;
    exit_ = end;

    Arm& body = out_->body;
    body.role = ArmRole::Function;
    body.items.push_back(ArmItem{start, nullptr});

    // start -> first real block
    pending_.push_back(emit_edge(start, EdgeKind::Fall));
    cur_ = kInvalidBlock;

    build_into(body, *fn_.body);

    // whatever dangles at the end of the body flows into the exit block
    close_current();
    patch_pending_to(end);
    body.items.push_back(ArmItem{end, nullptr});

    g.finalize();
    return std::move(out_);
  }

 private:
  // ------------------------------------------------------------ edge plumbing
  EdgeRef emit_edge(BlockId from, EdgeKind kind, std::int64_t label = 0) {
    BasicBlock& b = out_->graph.block(from);
    b.succs.push_back(Edge{kInvalidBlock, kind, label, false});
    return EdgeRef{from, static_cast<std::uint32_t>(b.succs.size() - 1)};
  }

  void patch(const EdgeRef& ref, BlockId to, bool back = false) {
    Edge& e = out_->graph.block(ref.from).succs[ref.succ_index];
    assert(e.to == kInvalidBlock && "edge patched twice");
    e.to = to;
    e.back = back;
  }

  void patch_pending_to(BlockId to) {
    for (const EdgeRef& ref : pending_) patch(ref, to);
    pending_.clear();
  }

  /// Ends the current statement block (if any) with a fall edge that joins
  /// the pending set.
  void close_current() {
    if (cur_ == kInvalidBlock) return;
    pending_.push_back(emit_edge(cur_, EdgeKind::Fall));
    cur_ = kInvalidBlock;
  }

  /// Block to append straight-line statements to; creates it (and registers
  /// it as an arm item) on demand.
  BlockId stmt_block(Arm& arm, SourceLoc loc) {
    if (cur_ != kInvalidBlock) return cur_;
    const BlockId b = out_->graph.add_block();
    out_->graph.block(b).loc = loc;
    patch_pending_to(b);
    arm.items.push_back(ArmItem{b, nullptr});
    cur_ = b;
    return b;
  }

  /// Fresh block holding exactly one decision. NOT an arm item — the
  /// construct owns it.
  BlockId decision_block(Arm& arm, SourceLoc loc) {
    close_current();
    const BlockId b = out_->graph.add_block();
    out_->graph.block(b).loc = loc;
    patch_pending_to(b);
    (void)arm;
    return b;
  }

  // ------------------------------------------------------------- statements
  void build_into(Arm& arm, const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Block:
        for (const auto& inner : s.body)
          if (inner) build_into(arm, *inner);
        break;
      case StmtKind::Empty:
        break;
      case StmtKind::Expr:
      case StmtKind::Assign:
      case StmtKind::Decl:
        out_->graph.block(stmt_block(arm, s.loc)).stmts.push_back(&s);
        break;
      case StmtKind::Return: {
        const BlockId b = stmt_block(arm, s.loc);
        out_->graph.block(b).stmts.push_back(&s);
        out_->graph.block(b).term = TermKind::Return;
        patch(emit_edge(b, EdgeKind::Return), exit_);
        cur_ = kInvalidBlock;
        // pending_ stays empty: code after a return is unreachable and
        // materialises as an entry-less block.
        break;
      }
      case StmtKind::If:
        build_if(arm, s);
        break;
      case StmtKind::While:
        build_while(arm, s);
        break;
      case StmtKind::DoWhile:
        build_do_while(arm, s);
        break;
      case StmtKind::Switch:
        build_switch(arm, s);
        break;
      case StmtKind::Break:
        close_current();
        assert(!break_stack_.empty() && "sema guarantees placement");
        for (const EdgeRef& ref : pending_) break_stack_.back()->push_back(ref);
        pending_.clear();
        break;
      case StmtKind::Continue:
        close_current();
        assert(!continue_stack_.empty() && "sema guarantees placement");
        for (const EdgeRef& ref : pending_)
          continue_stack_.back()->push_back(ref);
        pending_.clear();
        break;
    }
  }

  /// Builds the given statements as a fresh arm entered via `entry_edges`.
  /// Returns the arm's dangling exits (pending edges at its end).
  std::vector<EdgeRef> build_arm(Arm& arm,
                                 const std::vector<const Stmt*>& stmts,
                                 std::vector<EdgeRef> entry_edges) {
    if (entry_edges.size() == 1) arm.entry = entry_edges[0];
    arm.single_entry = entry_edges.size() <= 1;
    pending_ = std::move(entry_edges);
    cur_ = kInvalidBlock;
    for (const Stmt* s : stmts)
      if (s) build_into(arm, *s);
    close_current();
    return std::move(pending_);
  }

  std::vector<EdgeRef> build_arm(Arm& arm, const Stmt* stmt,
                                 std::vector<EdgeRef> entry_edges) {
    std::vector<const Stmt*> stmts;
    if (stmt) stmts.push_back(stmt);
    return build_arm(arm, stmts, std::move(entry_edges));
  }

  void build_if(Arm& arm, const Stmt& s) {
    const BlockId d = decision_block(arm, s.loc);
    BasicBlock& db = out_->graph.block(d);
    db.term = TermKind::Branch;
    db.decision = s.cond.get();

    auto c = std::make_unique<Construct>();
    c->kind = ConstructKind::If;
    c->stmt = &s;
    c->decision = d;

    std::vector<EdgeRef> after;

    c->arms.emplace_back();
    c->arms.back().role = ArmRole::Then;
    std::vector<EdgeRef> then_exits =
        build_arm(c->arms.back(), s.body[0].get(), {emit_edge(d, EdgeKind::True)});
    after.insert(after.end(), then_exits.begin(), then_exits.end());

    const EdgeRef false_edge = emit_edge(d, EdgeKind::False);
    if (s.body[1]) {
      c->arms.emplace_back();
      c->arms.back().role = ArmRole::Else;
      std::vector<EdgeRef> else_exits =
          build_arm(c->arms.back(), s.body[1].get(), {false_edge});
      after.insert(after.end(), else_exits.begin(), else_exits.end());
    } else {
      after.push_back(false_edge);
    }

    arm.items.push_back(ArmItem{kInvalidBlock, std::move(c)});
    pending_ = std::move(after);
    cur_ = kInvalidBlock;
  }

  void build_while(Arm& arm, const Stmt& s) {
    const BlockId d = decision_block(arm, s.loc);
    BasicBlock& db = out_->graph.block(d);
    db.term = TermKind::Branch;
    db.decision = s.cond.get();

    auto c = std::make_unique<Construct>();
    c->kind = ConstructKind::While;
    c->stmt = &s;
    c->decision = d;
    c->loop_bound = s.loop_bound;
    c->loop_entry = d;

    std::vector<EdgeRef> breaks;
    std::vector<EdgeRef> continues;
    break_stack_.push_back(&breaks);
    continue_stack_.push_back(&continues);

    c->arms.emplace_back();
    Arm& body = c->arms.back();
    body.role = ArmRole::LoopBody;
    std::vector<EdgeRef> body_exits =
        build_arm(body, s.body[0].get(), {emit_edge(d, EdgeKind::True)});

    break_stack_.pop_back();
    continue_stack_.pop_back();
    c->loop_has_escape = !breaks.empty();

    // The for-loop step (continue target) lives at the end of the body arm.
    if (s.body[1]) {
      pending_ = std::move(body_exits);
      pending_.insert(pending_.end(), continues.begin(), continues.end());
      continues.clear();
      cur_ = kInvalidBlock;
      build_into(body, *s.body[1]);
      close_current();
      body_exits = std::move(pending_);
    } else {
      body_exits.insert(body_exits.end(), continues.begin(), continues.end());
    }

    // Back edges to the loop header.
    for (const EdgeRef& ref : body_exits) patch(ref, d, /*back=*/true);

    pending_.clear();
    pending_.push_back(emit_edge(d, EdgeKind::False));
    pending_.insert(pending_.end(), breaks.begin(), breaks.end());
    cur_ = kInvalidBlock;
    arm.items.push_back(ArmItem{kInvalidBlock, std::move(c)});
  }

  void build_do_while(Arm& arm, const Stmt& s) {
    // The body is entered by plain fall-in; the decision sits at the bottom.
    close_current();
    std::vector<EdgeRef> entry = std::move(pending_);
    pending_.clear();

    auto c = std::make_unique<Construct>();
    c->kind = ConstructKind::DoWhile;
    c->stmt = &s;
    c->loop_bound = s.loop_bound;

    std::vector<EdgeRef> breaks;
    std::vector<EdgeRef> continues;
    break_stack_.push_back(&breaks);
    continue_stack_.push_back(&continues);

    c->arms.emplace_back();
    Arm& body = c->arms.back();
    body.role = ArmRole::LoopBody;
    std::vector<EdgeRef> body_exits =
        build_arm(body, s.body[0].get(), std::move(entry));

    break_stack_.pop_back();
    continue_stack_.pop_back();
    c->loop_has_escape = !breaks.empty();

    // Decision block at the bottom; body exits and continues flow into it.
    pending_ = std::move(body_exits);
    pending_.insert(pending_.end(), continues.begin(), continues.end());
    cur_ = kInvalidBlock;
    const BlockId d = out_->graph.add_block();
    out_->graph.block(d).loc = s.loc;
    patch_pending_to(d);
    BasicBlock& db = out_->graph.block(d);
    db.term = TermKind::Branch;
    db.decision = s.cond.get();
    c->decision = d;

    // Back edge: decision true -> first body block (or itself for an
    // empty body: `do {} while(c)` is a self-loop on the decision).
    BlockId body_first = arm_entry_block(body);
    if (body_first == kInvalidBlock) body_first = d;
    c->loop_entry = body_first;
    patch(emit_edge(d, EdgeKind::True), body_first, /*back=*/true);

    pending_.clear();
    pending_.push_back(emit_edge(d, EdgeKind::False));
    pending_.insert(pending_.end(), breaks.begin(), breaks.end());
    arm.items.push_back(ArmItem{kInvalidBlock, std::move(c)});
  }

  void build_switch(Arm& arm, const Stmt& s) {
    const BlockId d = decision_block(arm, s.loc);
    BasicBlock& db = out_->graph.block(d);
    db.term = TermKind::Switch;
    db.decision = s.cond.get();

    auto c = std::make_unique<Construct>();
    c->kind = ConstructKind::Switch;
    c->stmt = &s;
    c->decision = d;

    std::vector<EdgeRef> breaks;
    break_stack_.push_back(&breaks);

    std::vector<EdgeRef> fallthrough;  // dangling exits of the previous arm
    bool prev_arm_nonempty_fell = false;
    for (const minic::SwitchCase& sc : s.cases) {
      std::vector<EdgeRef> entries;
      if (sc.label.has_value() || sc.label_expr) {
        entries.push_back(emit_edge(d, EdgeKind::Case,
                                    sc.label.value_or(0)));
      } else {
        entries.push_back(emit_edge(d, EdgeKind::Default));
        c->has_default = true;
      }
      const bool falls_in = !fallthrough.empty();
      entries.insert(entries.end(), fallthrough.begin(), fallthrough.end());
      fallthrough.clear();

      c->arms.emplace_back();
      Arm& a = c->arms.back();
      a.role = sc.label_expr || sc.label.has_value() ? ArmRole::Case
                                                     : ArmRole::Default;
      a.case_label = sc.label;
      std::vector<const Stmt*> body_stmts;
      body_stmts.reserve(sc.body.size());
      for (const auto& inner : sc.body) body_stmts.push_back(inner.get());
      fallthrough = build_arm(a, body_stmts, std::move(entries));
      if (falls_in) {
        a.single_entry = false;
        // Fallthrough out of an *empty* arm is mere label aliasing
        // (`case 1: case 2: body`); only a non-empty arm spilling into the
        // next one is real control-flow fallthrough.
        if (prev_arm_nonempty_fell) c->has_fallthrough = true;
      }
      prev_arm_nonempty_fell = !a.empty() && !fallthrough.empty();
    }

    break_stack_.pop_back();

    // No default: the selector may match nothing and skip the switch.
    if (!c->has_default) breaks.push_back(emit_edge(d, EdgeKind::Default));
    // Trailing fallthrough exits the switch.
    breaks.insert(breaks.end(), fallthrough.begin(), fallthrough.end());

    pending_ = std::move(breaks);
    cur_ = kInvalidBlock;
    arm.items.push_back(ArmItem{kInvalidBlock, std::move(c)});
  }

  const minic::FunctionDef& fn_;
  std::unique_ptr<FunctionCfg> out_;
  BlockId exit_ = kInvalidBlock;

  BlockId cur_ = kInvalidBlock;
  std::vector<EdgeRef> pending_;
  std::vector<std::vector<EdgeRef>*> break_stack_;
  std::vector<std::vector<EdgeRef>*> continue_stack_;
};

}  // namespace

void Arm::collect_blocks(std::vector<BlockId>& out) const {
  for (const ArmItem& item : items) {
    if (item.is_block())
      out.push_back(item.block);
    else
      item.construct->collect_blocks(out);
  }
}

void Construct::collect_blocks(std::vector<BlockId>& out) const {
  out.push_back(decision);
  for (const Arm& a : arms) a.collect_blocks(out);
}

BlockId arm_entry_block(const Arm& arm) {
  if (arm.items.empty()) return kInvalidBlock;
  const ArmItem& first = arm.items.front();
  if (first.is_block()) return first.block;
  const Construct& c = *first.construct;
  if (c.kind == ConstructKind::DoWhile) {
    const BlockId body = arm_entry_block(c.arms[0]);
    return body != kInvalidBlock ? body : c.decision;
  }
  return c.decision;
}

std::unique_ptr<FunctionCfg> build_cfg(const minic::FunctionDef& fn) {
  return Builder(fn).run();
}

}  // namespace tmg::cfg
