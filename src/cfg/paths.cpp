#include "cfg/paths.h"

#include <cassert>
#include <cmath>

namespace tmg::cfg {

namespace {

/// Geometric series sum_{k=kmin..n} p^k with saturation.
PathCount geometric_sum(const PathCount& p, std::uint32_t kmin,
                        std::uint32_t n) {
  if (n < kmin) return PathCount(0);
  // Closed form in log space for large n (or saturated p): the sum is
  // dominated by p^n * p/(p-1) when p > 1.
  const bool p_is_one = !p.saturated() && p.exact() == 1;
  if (p_is_one) return PathCount(n - kmin + 1);
  const bool p_is_zero = !p.saturated() && p.exact() == 0;
  if (p_is_zero) return kmin == 0 ? PathCount(1) : PathCount(0);
  if (p.saturated() || n > 10000) {
    const double lp = p.log2();
    const double head = lp * static_cast<double>(n);
    // log2(p/(p-1)) <= 1 for p >= 2; bounded correction term.
    const double corr = std::log2(1.0 / (1.0 - std::exp2(-lp)));
    PathCount r = PathCount::from_log2(head + corr);
    return r;
  }
  PathCount term(1);
  PathCount sum(0);
  for (std::uint32_t k = 0; k <= n; ++k) {
    if (k >= kmin) sum += term;
    if (k < n) term *= p;
    if (sum.saturated() && term.saturated()) break;
  }
  return sum;
}

}  // namespace

PathCount unbounded_paths() {
  // Large enough to exceed any practical path bound; finite so the log-
  // domain arithmetic stays well behaved.
  return PathCount::from_log2(65536.0);
}

PathAnalysis::PathAnalysis(const FunctionCfg& f) : f_(f) {
  condense(f.body);  // post-order: inner loops are condensed first
}

void PathAnalysis::condense(const Arm& arm) {
  for (const ArmItem& item : arm.items)
    if (!item.is_block()) condense(*item.construct);
}

void PathAnalysis::condense(const Construct& c) {
  for (const Arm& a : c.arms) condense(a);
  if (c.kind != ConstructKind::While && c.kind != ConstructKind::DoWhile)
    return;

  CondensedLoop loop;
  loop.entry = c.loop_entry;
  loop.members.push_back(c.decision);
  c.arms[0].collect_blocks(loop.members);

  // Exit: the decision's False edge target.
  for (const Edge& e : f_.graph.block(c.decision).succs)
    if (e.kind == EdgeKind::False) loop.exit_target = e.to;

  if (!c.loop_bound || c.loop_has_escape) {
    loop.unbounded = true;
    loop.factor = unbounded_paths();
  } else {
    loop.bound = *c.loop_bound;
    // Paths of one body iteration (body entry -> back to the decision).
    PathCount body_paths(1);
    const BlockId body_entry =
        c.kind == ConstructKind::While
            ? [&] {
                for (const Edge& e : f_.graph.block(c.decision).succs)
                  if (e.kind == EdgeKind::True) return e.to;
                return kInvalidBlock;
              }()
            : c.loop_entry;
    if (body_entry != kInvalidBlock && body_entry != c.decision) {
      std::vector<BlockId> body_scope;
      c.arms[0].collect_blocks(body_scope);
      body_paths = count_scope(body_entry, body_scope);
    }
    if (c.kind == ConstructKind::While) {
      loop.factor = geometric_sum(body_paths, 0, loop.bound);
    } else {
      const std::uint32_t n = std::max<std::uint32_t>(loop.bound, 1);
      loop.factor = geometric_sum(body_paths, 1, n);
    }
  }
  loops_.emplace(loop.entry, std::move(loop));
}

const CondensedLoop* PathAnalysis::loop_at(BlockId header) const {
  auto it = loops_.find(header);
  return it == loops_.end() ? nullptr : &it->second;
}

PathCount PathAnalysis::count_scope(
    BlockId entry, const std::vector<BlockId>& scope) const {
  if (entry == kInvalidBlock) return PathCount(1);
  std::unordered_set<BlockId> in_scope(scope.begin(), scope.end());

  // Blocks consumed by a condensed loop are not traversed individually.
  std::unordered_set<BlockId> loop_member;
  for (const auto& [header, loop] : loops_) {
    if (!in_scope.count(header)) continue;
    for (BlockId b : loop.members)
      if (b != header) loop_member.insert(b);
  }

  std::unordered_map<BlockId, PathCount> count;
  count[entry] = PathCount(1);
  PathCount exit_total(0);

  for (BlockId b : f_.graph.topo_order()) {
    if (!in_scope.count(b)) continue;
    auto it = count.find(b);
    if (it == count.end()) continue;
    const PathCount flow = it->second;
    const bool is_zero = !flow.saturated() && flow.exact() == 0;
    if (is_zero) continue;

    if (const CondensedLoop* loop = loop_at(b)) {
      const PathCount out = flow * loop->factor;
      if (loop->exit_target != kInvalidBlock &&
          in_scope.count(loop->exit_target) &&
          !loop_member.count(loop->exit_target))
        count[loop->exit_target] += out;
      else
        exit_total += out;
      continue;
    }
    if (loop_member.count(b)) continue;  // inside a condensed loop

    const BasicBlock& blk = f_.graph.block(b);
    if (blk.term == TermKind::Exit) {
      exit_total += flow;
      continue;
    }
    for (const Edge& e : blk.succs) {
      if (e.back) {
        // A back edge leaving a non-condensed context: treat as an exit
        // (defensive; should not occur for well-formed scopes).
        exit_total += flow;
        continue;
      }
      if (in_scope.count(e.to) && !loop_member.count(e.to))
        count[e.to] += flow;
      else if (in_scope.count(e.to) && loop_member.count(e.to))
        exit_total += flow;  // flowing into a condensed region mid-loop
      else
        exit_total += flow;
    }
  }
  return exit_total;
}

PathCount PathAnalysis::arm_paths(const Arm& arm) const {
  if (arm.empty()) return PathCount(1);
  return count_scope(arm_entry_block(arm), arm.blocks());
}

PathCount PathAnalysis::construct_paths(const Construct& c) const {
  std::vector<BlockId> scope;
  c.collect_blocks(scope);
  const BlockId entry = (c.kind == ConstructKind::DoWhile)
                            ? c.loop_entry
                            : c.decision;
  return count_scope(entry, scope);
}

PathCount PathAnalysis::function_paths() const {
  return arm_paths(f_.body);
}

// ----------------------------------------------------------- enumeration

namespace {

class Enumerator {
 public:
  Enumerator(const FunctionCfg& f, std::unordered_set<BlockId> scope,
             std::size_t limit, std::vector<PathSpec>& out)
      : f_(f), scope_(std::move(scope)), limit_(limit), out_(out) {}

  bool run(BlockId entry) {
    if (entry == kInvalidBlock || !scope_.count(entry)) {
      out_.push_back(PathSpec{});  // the single empty path
      return true;
    }
    PathSpec current;
    return walk(entry, current);
  }

 private:
  // Returns false when the limit was hit (enumeration incomplete).
  bool walk(BlockId b, PathSpec& path) {
    path.blocks.push_back(b);
    const BasicBlock& blk = f_.graph.block(b);
    bool complete = true;
    if (blk.term == TermKind::Exit || blk.succs.empty()) {
      complete = emit(path);
    } else {
      const bool is_decision = blk.is_decision();
      for (std::uint32_t i = 0; i < blk.succs.size(); ++i) {
        const Edge& e = blk.succs[i];
        if (e.back && !scope_.count(e.to)) {
          // A back edge to a header outside the scope: the iteration (and
          // the path through this scope) ends here. Loop-body arms are
          // enumerated per iteration this way.
          if (is_decision) path.choices.push_back(EdgeRef{b, i});
          complete = emit(path) && complete;
          if (is_decision) path.choices.pop_back();
        } else if (e.back) {
          // Budget is shared by every back edge returning to this header
          // (normal body end, `continue`, ...).
          auto& taken = back_taken_[e.to];
          const std::uint32_t bound = back_bound(e.to);
          if (taken >= bound) continue;
          ++taken;
          if (is_decision) path.choices.push_back(EdgeRef{b, i});
          complete = walk(e.to, path) && complete;
          if (is_decision) path.choices.pop_back();
          --taken;
        } else if (scope_.count(e.to)) {
          if (is_decision) path.choices.push_back(EdgeRef{b, i});
          complete = walk(e.to, path) && complete;
          if (is_decision) path.choices.pop_back();
        } else {
          // Edge leaves the scope: the path ends here.
          if (is_decision) path.choices.push_back(EdgeRef{b, i});
          complete = emit(path) && complete;
          if (is_decision) path.choices.pop_back();
        }
        if (!complete && out_.size() >= limit_) break;
      }
    }
    path.blocks.pop_back();
    return complete;
  }

  bool emit(const PathSpec& path) {
    if (out_.size() >= limit_) return false;
    out_.push_back(path);
    return true;
  }

  /// Back-edge budget: how often back edges to `header` may be traversed.
  std::uint32_t back_bound(BlockId header) {
    auto it = bounds_.find(header);
    if (it != bounds_.end()) return it->second;
    return 0;
  }

 public:
  /// Registers the iteration bound for a loop header (set by the caller
  /// from the structure tree before running).
  void set_bound(BlockId header, std::uint32_t bound) {
    bounds_[header] = bound;
  }

 private:
  const FunctionCfg& f_;
  std::unordered_set<BlockId> scope_;
  std::size_t limit_;
  std::vector<PathSpec>& out_;
  std::unordered_map<BlockId, std::uint32_t> back_taken_;
  std::unordered_map<BlockId, std::uint32_t> bounds_;
};

void collect_loop_bounds(const Arm& arm, Enumerator& e);

void collect_loop_bounds(const Construct& c, Enumerator& e) {
  if (c.kind == ConstructKind::While || c.kind == ConstructKind::DoWhile) {
    // Header of the back edge: the block back edges point to. A while body
    // runs once per back-edge traversal; a do-while body runs once more
    // than its back edge is taken, so its budget is bound - 1.
    const BlockId header =
        c.kind == ConstructKind::While ? c.decision : c.loop_entry;
    std::uint32_t budget = c.loop_bound.value_or(0);
    if (c.kind == ConstructKind::DoWhile && budget > 0) --budget;
    e.set_bound(header, budget);
  }
  for (const Arm& a : c.arms) collect_loop_bounds(a, e);
}

void collect_loop_bounds(const Arm& arm, Enumerator& e) {
  for (const ArmItem& item : arm.items)
    if (!item.is_block()) collect_loop_bounds(*item.construct, e);
}

}  // namespace

bool enumerate_paths(const FunctionCfg& f, BlockId entry,
                     const std::vector<BlockId>& scope, std::size_t limit,
                     std::vector<PathSpec>& out) {
  Enumerator e(f, {scope.begin(), scope.end()}, limit, out);
  collect_loop_bounds(f.body, e);
  return e.run(entry);
}

}  // namespace tmg::cfg
