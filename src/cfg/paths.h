// Path counting and path enumeration over structure-tree regions.
//
// Counting is exact for arbitrary nestings of if/switch (including case
// fallthrough and break) and for loops whose body contains no
// break/continue: a loop is condensed to a super-node whose path factor is
// the geometric series sum_k P^k over its iteration bound. Loops without a
// __loopbound annotation, or with escaping control flow, count as
// "unbounded" — the partitioner then always decomposes them.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cfg/structure.h"
#include "support/path_count.h"

namespace tmg::cfg {

/// A PathCount that exceeds every practical bound; used for loops that
/// cannot be counted (no bound / escaping control flow).
PathCount unbounded_paths();

/// One concrete control path through a region: the block sequence plus the
/// decision edges taken (in execution order).
struct PathSpec {
  std::vector<BlockId> blocks;
  std::vector<EdgeRef> choices;
};

/// Precomputes loop condensation factors for one function, then answers
/// path-count queries for any structure region.
class PathAnalysis {
 public:
  explicit PathAnalysis(const FunctionCfg& f);

  /// Paths through an arm, from its entry to any edge leaving it.
  [[nodiscard]] PathCount arm_paths(const Arm& arm) const;
  /// Paths through a construct (decision block included).
  [[nodiscard]] PathCount construct_paths(const Construct& c) const;
  /// End-to-end paths through the whole function.
  [[nodiscard]] PathCount function_paths() const;

  /// Paths from `entry` through the given block scope to any edge leaving
  /// the scope. Nested loops inside the scope are condensed.
  [[nodiscard]] PathCount count_scope(BlockId entry,
                                      const std::vector<BlockId>& scope) const;

  /// Iteration bound of the loop headed at `header` (loop_entry block);
  /// 0 if the block heads no condensed loop.
  [[nodiscard]] const struct CondensedLoop* loop_at(BlockId header) const;

 private:
  void condense(const Arm& arm);
  void condense(const Construct& c);

  const FunctionCfg& f_;
  std::unordered_map<BlockId, struct CondensedLoop> loops_;
};

/// A loop collapsed to a single node for DAG-style counting.
struct CondensedLoop {
  BlockId entry = kInvalidBlock;   // decision (while) / first body block
  BlockId exit_target = kInvalidBlock;  // target of the decision's False edge
  PathCount factor;                // paths through the whole loop
  std::uint32_t bound = 0;         // iteration bound (0 = unbounded)
  bool unbounded = false;
  std::vector<BlockId> members;    // all blocks of the loop (incl. decision)
};

/// Enumerates up to `limit` paths through the scope (loops unrolled up to
/// their bounds). Returns true when the enumeration is complete (all paths
/// emitted), false when it was truncated at `limit`.
bool enumerate_paths(const FunctionCfg& f, BlockId entry,
                     const std::vector<BlockId>& scope, std::size_t limit,
                     std::vector<PathSpec>& out);

}  // namespace tmg::cfg
