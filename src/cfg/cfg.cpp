#include "cfg/cfg.h"

#include <cassert>
#include <functional>
#include <sstream>

#include "minic/printer.h"

namespace tmg::cfg {

std::string edge_kind_name(EdgeKind k) {
  switch (k) {
    case EdgeKind::Fall: return "fall";
    case EdgeKind::True: return "true";
    case EdgeKind::False: return "false";
    case EdgeKind::Case: return "case";
    case EdgeKind::Default: return "default";
    case EdgeKind::Return: return "return";
  }
  return "?";
}

void Cfg::finalize() {
  preds_.assign(blocks_.size(), {});
  for (const BasicBlock& b : blocks_) {
    for (const Edge& e : b.succs) {
      assert(e.to != kInvalidBlock && "unpatched edge at finalize()");
      preds_[e.to].push_back(b.id);
    }
  }
}

std::vector<BlockId> Cfg::topo_order() const {
  // Reverse post-order DFS ignoring Back edges; deterministic (successor
  // order = edge order).
  std::vector<BlockId> post;
  std::vector<std::uint8_t> state(blocks_.size(), 0);
  std::function<void(BlockId)> dfs = [&](BlockId v) {
    state[v] = 1;
    for (const Edge& e : blocks_[v].succs) {
      if (e.back) continue;
      if (e.to != kInvalidBlock && state[e.to] == 0) dfs(e.to);
    }
    state[v] = 2;
    post.push_back(v);
  };
  dfs(entry());
  // include unreachable blocks at the end for completeness
  for (BlockId b = 0; b < blocks_.size(); ++b)
    if (state[b] == 0) dfs(b);
  return {post.rbegin(), post.rend()};
}

std::vector<bool> Cfg::reachable() const {
  std::vector<bool> seen(blocks_.size(), false);
  std::vector<BlockId> stack{entry()};
  seen[entry()] = true;
  while (!stack.empty()) {
    const BlockId v = stack.back();
    stack.pop_back();
    for (const Edge& e : blocks_[v].succs) {
      if (e.to != kInvalidBlock && !seen[e.to]) {
        seen[e.to] = true;
        stack.push_back(e.to);
      }
    }
  }
  return seen;
}

std::size_t Cfg::decision_count() const {
  std::size_t n = 0;
  for (const BasicBlock& b : blocks_)
    if (b.is_decision()) ++n;
  return n;
}

std::string Cfg::to_dot() const {
  std::ostringstream os;
  os << "digraph \"" << function_name_ << "\" {\n";
  os << "  node [shape=box, fontname=\"monospace\"];\n";
  for (const BasicBlock& b : blocks_) {
    os << "  b" << b.id << " [label=\"#" << b.id;
    if (b.id == entry()) os << " (start)";
    if (b.id == exit_block()) os << " (end)";
    if (b.loc.valid()) os << " @" << b.loc.line;
    for (const minic::Stmt* s : b.stmts) {
      std::string text = minic::print_stmt(*s, 0);
      if (!text.empty() && text.back() == '\n') text.pop_back();
      // keep labels one-line
      for (char& c : text)
        if (c == '\n' || c == '"') c = ' ';
      os << "\\n" << text;
    }
    if (b.decision) {
      std::string text = minic::print_expr(*b.decision);
      for (char& c : text)
        if (c == '"') c = '\'';
      os << "\\n[" << (b.term == TermKind::Switch ? "switch " : "if ") << text
         << "]";
    }
    os << "\"];\n";
  }
  for (const BasicBlock& b : blocks_) {
    for (const Edge& e : b.succs) {
      os << "  b" << b.id << " -> b" << e.to << " [label=\"";
      if (e.kind == EdgeKind::Case)
        os << "case " << e.case_label;
      else if (e.kind != EdgeKind::Fall)
        os << edge_kind_name(e.kind);
      os << "\"";
      if (e.back) os << ", style=dashed";
      os << "];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace tmg::cfg
