// AST-directed structure tree over the CFG.
//
// The paper partitions "following the abstract syntax tree": the candidates
// for program segments are exactly the structure-tree regions — branch arms,
// case bodies, loop bodies and the function itself. Each Arm is a sequence
// of items (plain blocks or nested constructs); each Construct owns its
// decision block and its arms.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cfg/cfg.h"
#include "support/path_count.h"

namespace tmg::cfg {

struct Construct;

/// One element of an arm's statement sequence.
struct ArmItem {
  BlockId block = kInvalidBlock;         // set when this item is a block
  std::unique_ptr<Construct> construct;  // set when this item is nested

  [[nodiscard]] bool is_block() const { return construct == nullptr; }
};

/// Role of an arm within its parent construct (or the function).
enum class ArmRole : std::uint8_t {
  Function,  // the whole function body
  Then,
  Else,
  Case,
  Default,
  LoopBody,
};

/// A single-entry region candidate: a sequence of statements lowered to
/// blocks and nested constructs.
struct Arm {
  ArmRole role = ArmRole::Function;
  std::vector<ArmItem> items;

  /// The unique control edge entering this arm (nullopt for the function
  /// arm, whose entry is virtual, and for empty arms).
  std::optional<EdgeRef> entry;
  /// False when the arm can be entered by more than one edge (switch-case
  /// fallthrough); such arms are never program segments.
  bool single_entry = true;
  /// Case arms: the (folded) label; nullopt for default arms.
  std::optional<std::int64_t> case_label;

  [[nodiscard]] bool empty() const { return items.empty(); }

  /// All blocks covered by the arm, recursively, in construction order.
  void collect_blocks(std::vector<BlockId>& out) const;
  [[nodiscard]] std::vector<BlockId> blocks() const {
    std::vector<BlockId> out;
    collect_blocks(out);
    return out;
  }
};

/// Kind of nested construct.
enum class ConstructKind : std::uint8_t { If, While, DoWhile, Switch };

/// A branching statement: its decision block plus its arms.
struct Construct {
  ConstructKind kind = ConstructKind::If;
  const minic::Stmt* stmt = nullptr;  // the originating AST statement
  BlockId decision = kInvalidBlock;
  /// If: [then] or [then, else]. Loops: [body]. Switch: case arms in
  /// source order (default arm included at its source position).
  std::vector<Arm> arms;

  /// Loops: iteration bound from __loopbound (nullopt = unbounded).
  std::optional<std::uint32_t> loop_bound;
  /// Loops: body contains break/continue (path counting then saturates).
  bool loop_has_escape = false;
  /// Switch: some non-empty arm falls through into the next arm.
  bool has_fallthrough = false;
  /// Switch: an explicit default arm exists.
  bool has_default = false;
  /// Loops: entry block of the condensed region (decision for while,
  /// first body block for do-while).
  BlockId loop_entry = kInvalidBlock;

  void collect_blocks(std::vector<BlockId>& out) const;
};

/// A function's CFG together with its structure tree.
struct FunctionCfg {
  const minic::FunctionDef* fn = nullptr;
  Cfg graph;
  Arm body;  // role == Function; includes the start and end blocks as items

  explicit FunctionCfg(const minic::FunctionDef& f)
      : fn(&f), graph(f.name) {}
};

/// First block control enters when executing the arm: the leading block
/// item, or the entry block of the leading construct (decision block, or
/// first body block for do-while). kInvalidBlock for empty arms.
BlockId arm_entry_block(const Arm& arm);

/// Lowers one function to CFG + structure tree. The function must have been
/// semantically analysed.
std::unique_ptr<FunctionCfg> build_cfg(const minic::FunctionDef& fn);

}  // namespace tmg::cfg
